//! Agglomerative hierarchical clustering (Table IV baseline).
//!
//! The paper finds hierarchical clustering "often attributes bounding
//! boxes of the same object to separate clusters", catastrophically
//! overestimating crowd size (MAE 134.7 in Table IV). This implementation
//! uses the Lance–Williams update with selectable linkage and cuts the
//! dendrogram at a distance threshold.

use geom::Point3;
use serde::{Deserialize, Serialize};

use crate::Clustering;

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance (chains easily).
    Single,
    /// Maximum pairwise distance (compact, fragments elongated objects —
    /// the failure mode the paper observed).
    Complete,
    /// Unweighted average pairwise distance.
    Average,
}

/// Cuts the agglomerative dendrogram of `points` at `threshold`,
/// returning the resulting flat clustering (no noise concept: every point
/// belongs to a cluster).
///
/// # Panics
///
/// Panics if `threshold` is not positive.
pub fn hierarchical(points: &[Point3], linkage: Linkage, threshold: f64) -> Clustering {
    assert!(threshold > 0.0, "threshold must be positive");
    let n = points.len();
    if n == 0 {
        return Clustering::all_noise(0);
    }
    if n == 1 {
        return Clustering::new(vec![Some(0)], 1);
    }

    // Active-cluster distance matrix (flattened upper triangle kept full
    // square for simplicity; n is a few hundred for LiDAR captures).
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = points[i].distance(points[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    // Union-find style parent chain resolved at the end.
    let mut member_of: Vec<usize> = (0..n).collect();
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    loop {
        // Find the closest active pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i * n + j];
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((a, b, d)) = best else { break };
        if d > threshold {
            break;
        }
        // Merge b into a with the Lance–Williams update.
        let (sa, sb) = (size[a] as f64, size[b] as f64);
        for k in 0..n {
            if !active[k] || k == a || k == b {
                continue;
            }
            let dak = dist[a * n + k];
            let dbk = dist[b * n + k];
            let new = match linkage {
                Linkage::Single => dak.min(dbk),
                Linkage::Complete => dak.max(dbk),
                Linkage::Average => (sa * dak + sb * dbk) / (sa + sb),
            };
            dist[a * n + k] = new;
            dist[k * n + a] = new;
        }
        active[b] = false;
        size[a] += size[b];
        let moved = std::mem::take(&mut members[b]);
        for &m in &moved {
            member_of[m] = a;
        }
        members[a].extend(moved);
    }

    // Compact active roots into cluster ids.
    let mut root_to_id = vec![usize::MAX; n];
    let mut n_clusters = 0;
    for r in 0..n {
        if active[r] {
            root_to_id[r] = n_clusters;
            n_clusters += 1;
        }
    }
    let labels = member_of.iter().map(|&r| Some(root_to_id[r])).collect();
    Clustering::new(labels, n_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Vec3;

    fn line(start: Point3, n: usize, step: f64) -> Vec<Point3> {
        (0..n)
            .map(|i| start + Vec3::new(i as f64 * step, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn single_linkage_merges_chains() {
        // A 20-point chain with 0.1 spacing: single linkage at 0.15 keeps
        // it whole.
        let pts = line(Point3::ZERO, 20, 0.1);
        let c = hierarchical(&pts, Linkage::Single, 0.15);
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn complete_linkage_fragments_elongated_objects() {
        // The same chain under complete linkage fragments — the paper's
        // observed over-segmentation.
        let pts = line(Point3::ZERO, 20, 0.1);
        let c = hierarchical(&pts, Linkage::Complete, 0.15);
        assert!(
            c.cluster_count() >= 5,
            "complete linkage should shatter the chain, got {}",
            c.cluster_count()
        );
    }

    #[test]
    fn separated_groups_stay_separate() {
        let mut pts = line(Point3::ZERO, 10, 0.1);
        pts.extend(line(Point3::new(10.0, 0.0, 0.0), 10, 0.1));
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = hierarchical(&pts, linkage, 0.5);
            assert!(c.cluster_count() >= 2, "{linkage:?}");
            // A point from each group never shares a cluster.
            assert_ne!(c.labels()[0], c.labels()[15]);
        }
    }

    #[test]
    fn threshold_above_diameter_gives_one_cluster() {
        let pts = line(Point3::ZERO, 15, 0.1);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let c = hierarchical(&pts, linkage, 100.0);
            assert_eq!(c.cluster_count(), 1, "{linkage:?}");
        }
    }

    #[test]
    fn average_linkage_between_single_and_complete() {
        let pts = line(Point3::ZERO, 24, 0.1);
        let single = hierarchical(&pts, Linkage::Single, 0.15).cluster_count();
        let average = hierarchical(&pts, Linkage::Average, 0.15).cluster_count();
        let complete = hierarchical(&pts, Linkage::Complete, 0.15).cluster_count();
        assert!(single <= average && average <= complete);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(hierarchical(&[], Linkage::Single, 1.0).is_empty());
        let one = hierarchical(&[Point3::ZERO], Linkage::Single, 1.0);
        assert_eq!(one.cluster_count(), 1);
        assert_eq!(one.labels(), &[Some(0)]);
    }

    #[test]
    fn every_point_gets_a_label() {
        let mut pts = line(Point3::ZERO, 12, 0.3);
        pts.extend(line(Point3::new(0.0, 5.0, 0.0), 7, 0.2));
        let c = hierarchical(&pts, Linkage::Average, 0.4);
        assert_eq!(c.noise_count(), 0);
        assert_eq!(c.len(), 19);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn bad_threshold_panics() {
        let _ = hierarchical(&[Point3::ZERO], Linkage::Single, 0.0);
    }
}
