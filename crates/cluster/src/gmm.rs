//! Gaussian-mixture clustering via EM (§IV baseline).
//!
//! Like k-means, mixture models "assume a parametric distribution and
//! typically create clusters with convex shapes" (§IV) — they appear here
//! so the comparison benches can quantify that claim. Diagonal
//! covariances, k-means initialisation, MAP assignment.

use geom::{Point3, Vec3};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{kmeans, Clustering, KmeansParams};

/// Gaussian-mixture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmmParams {
    /// Number of components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on log-likelihood improvement.
    pub tol: f64,
    /// Variance floor that keeps components from collapsing onto single
    /// points.
    pub var_floor: f64,
}

impl Default for GmmParams {
    fn default() -> Self {
        GmmParams {
            k: 2,
            max_iters: 60,
            tol: 1e-6,
            var_floor: 1e-4,
        }
    }
}

struct Component {
    weight: f64,
    mean: Point3,
    /// Per-axis variances (diagonal covariance).
    var: Vec3,
}

impl Component {
    fn log_density(&self, p: Point3) -> f64 {
        let mut acc = 0.0;
        for ax in 0..3 {
            let d = p.axis(ax) - self.mean.axis(ax);
            let v = self.var.axis(ax);
            acc += -0.5 * (d * d / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        acc + self.weight.max(f64::MIN_POSITIVE).ln()
    }
}

/// Fits a `k`-component diagonal GMM with EM and returns the MAP
/// assignment of every point.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn gmm<R: Rng + ?Sized>(points: &[Point3], params: &GmmParams, rng: &mut R) -> Clustering {
    assert!(params.k > 0, "k must be positive");
    let n = points.len();
    if n == 0 {
        return Clustering::all_noise(0);
    }
    let k = params.k.min(n);

    // Initialise from k-means.
    let init = kmeans(
        points,
        &KmeansParams {
            k,
            max_iters: 20,
            tol: 1e-4,
        },
        rng,
    );
    let k = init.cluster_count().max(1);
    let mut comps: Vec<Component> = (0..k)
        .map(|_| Component {
            weight: 1.0 / k as f64,
            mean: Point3::ZERO,
            var: Vec3::splat(1.0),
        })
        .collect();
    {
        let groups = init.clusters();
        for (c, idxs) in groups.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mean = idxs.iter().map(|&i| points[i]).sum::<Point3>() / idxs.len() as f64;
            let mut var = Vec3::splat(params.var_floor);
            for &i in idxs {
                let d = points[i] - mean;
                var += Vec3::new(d.x * d.x, d.y * d.y, d.z * d.z) / idxs.len() as f64;
            }
            comps[c] = Component {
                weight: idxs.len() as f64 / n as f64,
                mean,
                var: var.max(Vec3::splat(params.var_floor)),
            };
        }
    }

    let mut resp = vec![0.0f64; n * k];
    let mut prev_ll = f64::NEG_INFINITY;
    for _ in 0..params.max_iters {
        // E step.
        let mut ll = 0.0;
        for (i, &p) in points.iter().enumerate() {
            let logs: Vec<f64> = comps.iter().map(|c| c.log_density(p)).collect();
            let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for (c, &lg) in logs.iter().enumerate() {
                let e = (lg - m).exp();
                resp[i * k + c] = e;
                z += e;
            }
            for c in 0..k {
                resp[i * k + c] /= z;
            }
            ll += m + z.ln();
        }
        // M step.
        for c in 0..k {
            let nk: f64 = (0..n).map(|i| resp[i * k + c]).sum();
            if nk < 1e-9 {
                continue;
            }
            let mean = (0..n).map(|i| points[i] * resp[i * k + c]).sum::<Point3>() / nk;
            let mut var = Vec3::ZERO;
            for i in 0..n {
                let d = points[i] - mean;
                var += Vec3::new(d.x * d.x, d.y * d.y, d.z * d.z) * resp[i * k + c];
            }
            comps[c] = Component {
                weight: nk / n as f64,
                mean,
                var: (var / nk).max(Vec3::splat(params.var_floor)),
            };
        }
        if (ll - prev_ll).abs() < params.tol {
            break;
        }
        prev_ll = ll;
    }

    // MAP assignment, compacting empty components.
    let mut used: Vec<Option<usize>> = vec![None; k];
    let mut next_id = 0;
    let labels: Vec<Option<usize>> = points
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let c = (0..k)
                .max_by(|&a, &b| {
                    resp[i * k + a]
                        .partial_cmp(&resp[i * k + b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            let id = *used[c].get_or_insert_with(|| {
                let id = next_id;
                next_id += 1;
                id
            });
            Some(id)
        })
        .collect();
    Clustering::new(labels, next_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(33)
    }

    fn blob(center: Point3, n: usize, spread: f64) -> Vec<Point3> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963;
                let r = spread * ((i % 9) as f64 / 9.0);
                center + Vec3::new(r * a.cos(), r * a.sin(), r * (a * 0.5).sin() * 0.5)
            })
            .collect()
    }

    #[test]
    fn separates_two_gaussians() {
        let mut pts = blob(Point3::ZERO, 60, 0.4);
        pts.extend(blob(Point3::new(8.0, 0.0, 0.0), 60, 0.4));
        let c = gmm(
            &pts,
            &GmmParams {
                k: 2,
                ..GmmParams::default()
            },
            &mut rng(),
        );
        assert_eq!(c.cluster_count(), 2);
        let l0 = c.labels()[0];
        assert!(c.labels()[..60].iter().all(|&l| l == l0));
        assert!(c.labels()[60..].iter().all(|&l| l != l0));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(gmm(&[], &GmmParams::default(), &mut rng()).is_empty());
        let one = gmm(
            &[Point3::ZERO],
            &GmmParams {
                k: 3,
                ..GmmParams::default()
            },
            &mut rng(),
        );
        assert_eq!(one.cluster_count(), 1);
    }

    #[test]
    fn every_point_assigned() {
        let pts = blob(Point3::ZERO, 50, 1.0);
        let c = gmm(
            &pts,
            &GmmParams {
                k: 3,
                ..GmmParams::default()
            },
            &mut rng(),
        );
        assert_eq!(c.noise_count(), 0);
        assert_eq!(c.len(), 50);
    }

    #[test]
    fn coincident_points_survive_var_floor() {
        let pts = vec![Point3::splat(1.0); 40];
        let c = gmm(
            &pts,
            &GmmParams {
                k: 2,
                ..GmmParams::default()
            },
            &mut rng(),
        );
        assert!(c.cluster_count() >= 1);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = gmm(
            &[],
            &GmmParams {
                k: 0,
                ..GmmParams::default()
            },
            &mut rng(),
        );
    }
}
