//! Adaptive clustering — the paper's first core contribution (§IV).
//!
//! A fixed DBSCAN `ε` cannot serve every capture: the optimal value varies
//! from 0.04 to 9.06 across the paper's training set (Fig. 4b). Adaptive
//! clustering recomputes `ε` per capture: sort the k-NN distances, find
//! the elbow with the maximum-relative-gap rule, and run DBSCAN with the
//! distance value at the elbow.

use geom::{KdTree, Point3};
use serde::{Deserialize, Serialize};

use crate::{dbscan_with_scratch, dbscan_with_tree, knee, Clustering, DbscanParams, DbscanScratch};

/// Parameters of adaptive clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Which nearest neighbour's distance builds the curve (the paper's
    /// `n`; `k = min_points - 1` is the classic DBSCAN pairing).
    pub k: usize,
    /// DBSCAN core-point threshold `m`.
    pub min_points: usize,
    /// Fallback `ε` when the elbow is undefined (e.g. all points
    /// coincident). Chosen near the Fig. 4b mode of 0.08.
    pub fallback_eps: f64,
    /// Lower clamp on the located `ε`, guarding against a degenerate
    /// elbow inside sensor noise.
    pub min_eps: f64,
    /// Upper clamp on the located `ε` (Fig. 4b maxes out at 9.06).
    pub max_eps: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            k: 4,
            min_points: 5,
            fallback_eps: 0.08,
            min_eps: 0.02,
            max_eps: 9.06,
        }
    }
}

/// Where an adaptive `ε` came from — the provenance half of the
/// decision, recorded in the run journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsChoice {
    /// The `ε` handed to DBSCAN.
    pub eps: f64,
    /// Index of the elbow in the sorted k-NN distance curve, when the
    /// maximum-relative-gap rule produced one (`None` means the
    /// fallback was used).
    pub knee_index: Option<usize>,
    /// True when the elbow value landed outside `[min_eps, max_eps]`
    /// and was clamped.
    pub clamped: bool,
}

/// Computes the per-capture optimal `ε` and where it came from: the
/// value at the elbow of the ascending k-NN distance curve, clamped to
/// the configured range.
///
/// Degenerate inputs never panic and never yield a non-finite `ε`;
/// they take the documented `fallback_eps` instead:
///
/// * captures with fewer than `k + 2` points (no meaningful curve),
/// * curves left with fewer than two entries after non-finite
///   distances (overflowing coordinates, `k` exceeding the usable
///   neighbourhood) are filtered out,
/// * curves where no elbow exists (all distances zero — coincident
///   points).
///
/// An all-equal positive curve (a perfectly uniform grid) has zero
/// relative gaps everywhere; the elbow resolves to the first index, so
/// `ε` equals the uniform spacing — finite and usable.
pub fn adaptive_eps_detailed(points: &[Point3], cfg: &AdaptiveConfig) -> EpsChoice {
    if points.len() < cfg.k + 2 {
        return EpsChoice {
            eps: cfg.fallback_eps,
            knee_index: None,
            clamped: false,
        };
    }
    adaptive_eps_from_tree(&KdTree::build(points), cfg)
}

/// [`adaptive_eps_detailed`] over an already-built tree, so per-frame
/// callers (and [`adaptive_dbscan`] itself) can reuse one tree for both
/// the k-NN elbow and the DBSCAN expansion queries.
pub fn adaptive_eps_from_tree(tree: &KdTree, cfg: &AdaptiveConfig) -> EpsChoice {
    let fallback = EpsChoice {
        eps: cfg.fallback_eps,
        knee_index: None,
        clamped: false,
    };
    if tree.len() < cfg.k + 2 {
        return fallback;
    }
    let mut dists = tree.knn_distances(cfg.k);
    // Non-finite distances (coordinate overflow, short neighbourhoods)
    // carry no elbow information and would poison the sort order.
    dists.retain(|d| d.is_finite());
    if dists.len() < 2 {
        return fallback;
    }
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    match knee::max_relative_gap(&dists) {
        Some(idx) if dists[idx].is_finite() && dists[idx] > 0.0 => {
            let eps = dists[idx].clamp(cfg.min_eps, cfg.max_eps);
            EpsChoice {
                eps,
                knee_index: Some(idx),
                clamped: eps != dists[idx],
            }
        }
        _ => fallback,
    }
}

/// Computes the per-capture optimal `ε` (see [`adaptive_eps_detailed`]
/// for the provenance-carrying variant).
pub fn adaptive_eps(points: &[Point3], cfg: &AdaptiveConfig) -> f64 {
    adaptive_eps_detailed(points, cfg).eps
}

/// The paper's adaptive clustering: per-capture `ε` from
/// [`adaptive_eps`], then DBSCAN. Notes the ε decision on the open
/// telemetry frame, if any.
pub fn adaptive_dbscan(points: &[Point3], cfg: &AdaptiveConfig) -> Clustering {
    adaptive_dbscan_with_scratch(points, cfg, &mut DbscanScratch::new())
}

/// [`adaptive_dbscan`] with caller-owned DBSCAN working memory. One
/// kd-tree serves both the elbow search and the expansion queries, and
/// with a warmed `scratch` the whole stage performs no per-query heap
/// allocations.
pub fn adaptive_dbscan_with_scratch(
    points: &[Point3],
    cfg: &AdaptiveConfig,
    scratch: &mut DbscanScratch,
) -> Clustering {
    let params_for = |choice: &EpsChoice| DbscanParams {
        eps: choice.eps,
        min_points: cfg.min_points,
    };
    let choice;
    let clustering = if points.len() < cfg.k + 2 {
        choice = adaptive_eps_detailed(points, cfg);
        dbscan_with_scratch(points, &params_for(&choice), scratch)
    } else {
        let tree = KdTree::build(points);
        choice = adaptive_eps_from_tree(&tree, cfg);
        dbscan_with_tree(&tree, &params_for(&choice), scratch)
    };
    obs::frame_eps(choice.eps, choice.knee_index);
    if choice.clamped {
        obs::incr("cluster.eps_clamped", 1);
    }
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan;
    use geom::Vec3;

    fn blob(center: Point3, n: usize, spacing: f64) -> Vec<Point3> {
        // Regular 3-D grid: uniform density with known spacing.
        let side = (n as f64).cbrt().ceil() as usize;
        let mut pts = Vec::with_capacity(n);
        'outer: for i in 0..side {
            for j in 0..side {
                for k in 0..side {
                    if pts.len() == n {
                        break 'outer;
                    }
                    pts.push(center + Vec3::new(i as f64, j as f64, k as f64) * spacing);
                }
            }
        }
        pts
    }

    #[test]
    fn eps_tracks_point_spacing() {
        // The same shape at two scales must yield proportionally
        // different ε — exactly what a fixed ε cannot do.
        let tight = blob(Point3::ZERO, 60, 0.02);
        let loose = blob(Point3::ZERO, 60, 0.2);
        let cfg = AdaptiveConfig::default();
        let e_tight = adaptive_eps(&tight, &cfg);
        let e_loose = adaptive_eps(&loose, &cfg);
        assert!(
            e_loose > 2.0 * e_tight,
            "loose {e_loose} should dwarf tight {e_tight}"
        );
    }

    #[test]
    fn separates_two_pedestrian_like_blobs() {
        let mut pts = blob(Point3::new(15.0, 0.0, -2.0), 80, 0.02);
        pts.extend(blob(Point3::new(18.0, 1.5, -2.0), 80, 0.02));
        let c = adaptive_dbscan(&pts, &AdaptiveConfig::default());
        assert_eq!(c.cluster_count(), 2, "noise: {}", c.noise_count());
    }

    #[test]
    fn eps_clamped_to_configured_range() {
        let cfg = AdaptiveConfig {
            min_eps: 0.5,
            max_eps: 1.0,
            ..AdaptiveConfig::default()
        };
        let tight = blob(Point3::ZERO, 60, 0.001);
        let eps = adaptive_eps(&tight, &cfg);
        assert!(eps >= 0.5);
        let spread = blob(Point3::ZERO, 60, 5.0);
        let eps2 = adaptive_eps(&spread, &cfg);
        assert!(eps2 <= 1.0);
    }

    #[test]
    fn tiny_inputs_fall_back() {
        let cfg = AdaptiveConfig::default();
        assert_eq!(adaptive_eps(&[], &cfg), cfg.fallback_eps);
        let few = vec![Point3::ZERO; 3];
        assert_eq!(adaptive_eps(&few, &cfg), cfg.fallback_eps);
    }

    #[test]
    fn coincident_points_fall_back_and_cluster() {
        let pts = vec![Point3::splat(1.0); 30];
        let cfg = AdaptiveConfig::default();
        assert_eq!(adaptive_eps(&pts, &cfg), cfg.fallback_eps);
        let c = adaptive_dbscan(&pts, &cfg);
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn fewer_than_k_plus_one_points_fall_back() {
        let cfg = AdaptiveConfig::default(); // k = 4
        for n in 0..=cfg.k + 1 {
            let pts: Vec<Point3> = (0..n).map(|i| Point3::splat(i as f64)).collect();
            let choice = adaptive_eps_detailed(&pts, &cfg);
            assert_eq!(choice.eps, cfg.fallback_eps, "n = {n}");
            assert_eq!(choice.knee_index, None);
        }
    }

    #[test]
    fn all_equal_distances_give_finite_eps() {
        // A uniform 1-D chain: every k-NN distance is identical, so
        // every relative gap is zero. The elbow resolves to the first
        // index and ε equals the spacing — never NaN.
        let pts: Vec<Point3> = (0..40)
            .map(|i| Point3::new(i as f64 * 0.1, 0.0, 0.0))
            .collect();
        let cfg = AdaptiveConfig::default();
        let choice = adaptive_eps_detailed(&pts, &cfg);
        assert!(
            choice.eps.is_finite() && choice.eps > 0.0,
            "eps {}",
            choice.eps
        );
        let c = adaptive_dbscan(&pts, &cfg);
        assert!(c.cluster_count() >= 1);
    }

    #[test]
    fn extreme_coordinates_never_yield_non_finite_eps() {
        // Distances between ±1e200 points overflow to infinity; the
        // curve filter must keep ε finite (clamped or fallback).
        let mut pts: Vec<Point3> = (0..20)
            .map(|i| Point3::new(if i % 2 == 0 { 1e200 } else { -1e200 }, i as f64, 0.0))
            .collect();
        pts.push(Point3::new(1e200, 0.5, 0.0));
        let cfg = AdaptiveConfig::default();
        let choice = adaptive_eps_detailed(&pts, &cfg);
        assert!(choice.eps.is_finite(), "eps {}", choice.eps);
        assert!(choice.eps <= cfg.max_eps);
    }

    #[test]
    fn empty_cluster_free_partition_on_sparse_noise() {
        // Widely separated single points: everything is noise, no
        // cluster is empty, nothing panics.
        let pts: Vec<Point3> = (0..6).map(|i| Point3::splat(i as f64 * 100.0)).collect();
        let c = adaptive_dbscan(&pts, &AdaptiveConfig::default());
        let groups = c.cluster_points(&pts);
        assert_eq!(groups.len(), c.cluster_count());
        for (id, g) in groups.iter().enumerate() {
            assert!(!g.is_empty(), "cluster {id} is empty");
        }
    }

    #[test]
    fn adaptive_beats_fixed_eps_across_scales() {
        // One capture with widely-spaced far points, one with dense near
        // points; a single fixed ε fails on at least one of them, the
        // adaptive version gets both (the §IV motivation).
        let near = blob(Point3::new(12.5, 0.0, -2.0), 100, 0.02);
        let far = blob(Point3::new(33.0, 0.0, -2.0), 40, 0.15);

        let cfg = AdaptiveConfig::default();
        let a_near = adaptive_dbscan(&near, &cfg);
        let a_far = adaptive_dbscan(&far, &cfg);
        assert_eq!(a_near.cluster_count(), 1);
        assert_eq!(a_far.cluster_count(), 1);
        // A fixed ε tuned to the near capture shatters the far one.
        let eps_near = adaptive_eps(&near, &cfg);
        let fixed = dbscan(
            &far,
            &DbscanParams {
                eps: eps_near,
                min_points: cfg.min_points,
            },
        );
        assert!(
            fixed.cluster_count() != 1 || fixed.noise_count() > 0,
            "fixed ε unexpectedly handled both scales"
        );
    }
}
