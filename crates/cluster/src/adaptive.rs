//! Adaptive clustering — the paper's first core contribution (§IV).
//!
//! A fixed DBSCAN `ε` cannot serve every capture: the optimal value varies
//! from 0.04 to 9.06 across the paper's training set (Fig. 4b). Adaptive
//! clustering recomputes `ε` per capture: sort the k-NN distances, find
//! the elbow with the maximum-relative-gap rule, and run DBSCAN with the
//! distance value at the elbow.

use geom::{KdTree, Point3};
use serde::{Deserialize, Serialize};

use crate::{dbscan, knee, Clustering, DbscanParams};

/// Parameters of adaptive clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Which nearest neighbour's distance builds the curve (the paper's
    /// `n`; `k = min_points - 1` is the classic DBSCAN pairing).
    pub k: usize,
    /// DBSCAN core-point threshold `m`.
    pub min_points: usize,
    /// Fallback `ε` when the elbow is undefined (e.g. all points
    /// coincident). Chosen near the Fig. 4b mode of 0.08.
    pub fallback_eps: f64,
    /// Lower clamp on the located `ε`, guarding against a degenerate
    /// elbow inside sensor noise.
    pub min_eps: f64,
    /// Upper clamp on the located `ε` (Fig. 4b maxes out at 9.06).
    pub max_eps: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            k: 4,
            min_points: 5,
            fallback_eps: 0.08,
            min_eps: 0.02,
            max_eps: 9.06,
        }
    }
}

/// Where an adaptive `ε` came from — the provenance half of the
/// decision, recorded in the run journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsChoice {
    /// The `ε` handed to DBSCAN.
    pub eps: f64,
    /// Index of the elbow in the sorted k-NN distance curve, when the
    /// maximum-relative-gap rule produced one (`None` means the
    /// fallback was used).
    pub knee_index: Option<usize>,
    /// True when the elbow value landed outside `[min_eps, max_eps]`
    /// and was clamped.
    pub clamped: bool,
}

/// Computes the per-capture optimal `ε` and where it came from: the
/// value at the elbow of the ascending k-NN distance curve, clamped to
/// the configured range, or the fallback for captures with fewer than
/// `k + 2` points, where no meaningful curve exists.
pub fn adaptive_eps_detailed(points: &[Point3], cfg: &AdaptiveConfig) -> EpsChoice {
    let fallback = EpsChoice {
        eps: cfg.fallback_eps,
        knee_index: None,
        clamped: false,
    };
    if points.len() < cfg.k + 2 {
        return fallback;
    }
    let tree = KdTree::build(points);
    let mut dists = tree.knn_distances(cfg.k);
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    match knee::max_relative_gap(&dists) {
        Some(idx) if dists[idx].is_finite() && dists[idx] > 0.0 => {
            let eps = dists[idx].clamp(cfg.min_eps, cfg.max_eps);
            EpsChoice {
                eps,
                knee_index: Some(idx),
                clamped: eps != dists[idx],
            }
        }
        _ => fallback,
    }
}

/// Computes the per-capture optimal `ε` (see [`adaptive_eps_detailed`]
/// for the provenance-carrying variant).
pub fn adaptive_eps(points: &[Point3], cfg: &AdaptiveConfig) -> f64 {
    adaptive_eps_detailed(points, cfg).eps
}

/// The paper's adaptive clustering: per-capture `ε` from
/// [`adaptive_eps`], then DBSCAN. Notes the ε decision on the open
/// telemetry frame, if any.
pub fn adaptive_dbscan(points: &[Point3], cfg: &AdaptiveConfig) -> Clustering {
    let choice = adaptive_eps_detailed(points, cfg);
    obs::frame_eps(choice.eps, choice.knee_index);
    if choice.clamped {
        obs::incr("cluster.eps_clamped", 1);
    }
    dbscan(
        points,
        &DbscanParams {
            eps: choice.eps,
            min_points: cfg.min_points,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Vec3;

    fn blob(center: Point3, n: usize, spacing: f64) -> Vec<Point3> {
        // Regular 3-D grid: uniform density with known spacing.
        let side = (n as f64).cbrt().ceil() as usize;
        let mut pts = Vec::with_capacity(n);
        'outer: for i in 0..side {
            for j in 0..side {
                for k in 0..side {
                    if pts.len() == n {
                        break 'outer;
                    }
                    pts.push(center + Vec3::new(i as f64, j as f64, k as f64) * spacing);
                }
            }
        }
        pts
    }

    #[test]
    fn eps_tracks_point_spacing() {
        // The same shape at two scales must yield proportionally
        // different ε — exactly what a fixed ε cannot do.
        let tight = blob(Point3::ZERO, 60, 0.02);
        let loose = blob(Point3::ZERO, 60, 0.2);
        let cfg = AdaptiveConfig::default();
        let e_tight = adaptive_eps(&tight, &cfg);
        let e_loose = adaptive_eps(&loose, &cfg);
        assert!(
            e_loose > 2.0 * e_tight,
            "loose {e_loose} should dwarf tight {e_tight}"
        );
    }

    #[test]
    fn separates_two_pedestrian_like_blobs() {
        let mut pts = blob(Point3::new(15.0, 0.0, -2.0), 80, 0.02);
        pts.extend(blob(Point3::new(18.0, 1.5, -2.0), 80, 0.02));
        let c = adaptive_dbscan(&pts, &AdaptiveConfig::default());
        assert_eq!(c.cluster_count(), 2, "noise: {}", c.noise_count());
    }

    #[test]
    fn eps_clamped_to_configured_range() {
        let cfg = AdaptiveConfig {
            min_eps: 0.5,
            max_eps: 1.0,
            ..AdaptiveConfig::default()
        };
        let tight = blob(Point3::ZERO, 60, 0.001);
        let eps = adaptive_eps(&tight, &cfg);
        assert!(eps >= 0.5);
        let spread = blob(Point3::ZERO, 60, 5.0);
        let eps2 = adaptive_eps(&spread, &cfg);
        assert!(eps2 <= 1.0);
    }

    #[test]
    fn tiny_inputs_fall_back() {
        let cfg = AdaptiveConfig::default();
        assert_eq!(adaptive_eps(&[], &cfg), cfg.fallback_eps);
        let few = vec![Point3::ZERO; 3];
        assert_eq!(adaptive_eps(&few, &cfg), cfg.fallback_eps);
    }

    #[test]
    fn coincident_points_fall_back_and_cluster() {
        let pts = vec![Point3::splat(1.0); 30];
        let cfg = AdaptiveConfig::default();
        assert_eq!(adaptive_eps(&pts, &cfg), cfg.fallback_eps);
        let c = adaptive_dbscan(&pts, &cfg);
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn adaptive_beats_fixed_eps_across_scales() {
        // One capture with widely-spaced far points, one with dense near
        // points; a single fixed ε fails on at least one of them, the
        // adaptive version gets both (the §IV motivation).
        let near = blob(Point3::new(12.5, 0.0, -2.0), 100, 0.02);
        let far = blob(Point3::new(33.0, 0.0, -2.0), 40, 0.15);

        let cfg = AdaptiveConfig::default();
        let a_near = adaptive_dbscan(&near, &cfg);
        let a_far = adaptive_dbscan(&far, &cfg);
        assert_eq!(a_near.cluster_count(), 1);
        assert_eq!(a_far.cluster_count(), 1);
        // A fixed ε tuned to the near capture shatters the far one.
        let eps_near = adaptive_eps(&near, &cfg);
        let fixed = dbscan(
            &far,
            &DbscanParams {
                eps: eps_near,
                min_points: cfg.min_points,
            },
        );
        assert!(
            fixed.cluster_count() != 1 || fixed.noise_count() > 0,
            "fixed ε unexpectedly handled both scales"
        );
    }
}
