//! Elbow ("knee") detection on sorted k-NN distance curves.
//!
//! §IV: "HAWC-CC performs the KneeLocator algorithm on the sorted distance
//! vector `D_i` to determine the elbow point as
//! `k_elbow = argmax_i (d_{i+1} − d_i) / d_i`", i.e. the largest relative
//! jump in the ascending distance curve. A Kneedle-style detector is also
//! provided for the ablation bench.

/// Index of the elbow of an ascending curve using the paper's
/// maximum-relative-gap rule. Returns `None` for curves with fewer than
/// two points or when no finite positive gap exists.
///
/// # Examples
///
/// ```
/// let d = [0.1, 0.11, 0.12, 0.13, 1.5, 1.6];
/// // The jump from 0.13 to 1.5 is the elbow.
/// assert_eq!(cluster::knee::max_relative_gap(&d), Some(3));
/// ```
pub fn max_relative_gap(sorted: &[f64]) -> Option<usize> {
    if sorted.len() < 2 {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for i in 0..sorted.len() - 1 {
        let d = sorted[i];
        if d <= 0.0 || !d.is_finite() || !sorted[i + 1].is_finite() {
            continue;
        }
        let gap = (sorted[i + 1] - d) / d;
        if gap.is_finite() && best.is_none_or(|(_, g)| gap > g) {
            best = Some((i, gap));
        }
    }
    best.map(|(i, _)| i)
}

/// Kneedle-style elbow detection: normalise the curve to the unit square
/// and return the index maximising the difference between the curve and
/// the diagonal. Used as an ablation alternative to
/// [`max_relative_gap`].
///
/// Returns `None` for degenerate (constant or too-short) curves.
pub fn kneedle(sorted: &[f64]) -> Option<usize> {
    let n = sorted.len();
    if n < 3 {
        return None;
    }
    let lo = sorted[0];
    let hi = sorted[n - 1];
    if !(hi - lo).is_finite() || hi - lo <= 0.0 {
        return None;
    }
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &d) in sorted.iter().enumerate() {
        let x = i as f64 / (n - 1) as f64;
        let y = (d - lo) / (hi - lo);
        // For a convex increasing curve the knee maximises x - y.
        let diff = x - y;
        if diff > best.1 {
            best = (i, diff);
        }
    }
    Some(best.0)
}

/// Convenience: the curve *value* at the paper's elbow — the "optimal ε"
/// of §IV (`ε_optimal = d_{k_elbow}`). Returns `None` when no elbow
/// exists.
pub fn elbow_value(sorted: &[f64]) -> Option<f64> {
    max_relative_gap(sorted).map(|i| sorted[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_obvious_jump() {
        let d = [0.05, 0.06, 0.07, 0.08, 0.9, 1.0, 1.1];
        assert_eq!(max_relative_gap(&d), Some(3));
        assert_eq!(elbow_value(&d), Some(0.08));
    }

    #[test]
    fn paper_figure_4a_shape() {
        // Fig. 4a: gentle ramp up to ~0.069, one sharp jump into the noise
        // tail, then a tail that keeps growing with smaller *relative*
        // increments. The elbow value is the last in-cluster distance.
        let mut d: Vec<f64> = (0..300).map(|i| 0.03 + 0.00013 * i as f64).collect();
        let mut tail = *d.last().unwrap() * 3.0; // the sharp jump (gap 2.0)
        while tail < 9.0 {
            d.push(tail);
            tail *= 1.6; // later gaps are 0.6 < 2.0
        }
        let idx = max_relative_gap(&d).unwrap();
        let eps = d[idx];
        assert!((0.06..=0.08).contains(&eps), "eps {eps}");
    }

    #[test]
    fn short_and_degenerate_curves() {
        assert_eq!(max_relative_gap(&[]), None);
        assert_eq!(max_relative_gap(&[1.0]), None);
        assert_eq!(max_relative_gap(&[0.0, 0.0, 0.0]), None);
        assert_eq!(kneedle(&[1.0, 2.0]), None);
        assert_eq!(kneedle(&[2.0, 2.0, 2.0]), None);
    }

    #[test]
    fn leading_zeros_are_skipped() {
        // Duplicate points give zero distances; the relative gap from zero
        // is undefined and must be skipped, not produce infinity.
        let d = [0.0, 0.0, 0.1, 0.11, 0.12, 2.0];
        let idx = max_relative_gap(&d).unwrap();
        assert_eq!(idx, 4);
    }

    #[test]
    fn all_equal_positive_distances_resolve_to_first_index() {
        // Uniform grids produce a constant curve: every relative gap is
        // exactly zero. The elbow ties resolve to the first index, so
        // the ε read off the curve is the (finite) uniform spacing.
        let d = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(max_relative_gap(&d), Some(0));
        assert_eq!(elbow_value(&d), Some(0.5));
    }

    #[test]
    fn uniform_curve_picks_first_max() {
        // Constant relative gaps: ties resolve to the first index.
        let d = [1.0, 2.0, 4.0, 8.0];
        assert_eq!(max_relative_gap(&d), Some(0));
    }

    #[test]
    fn kneedle_on_convex_curve() {
        // y = x^4 on [0,1]: knee where x - y is maximal, x = (1/4)^(1/3) ≈ 0.63.
        let d: Vec<f64> = (0..=100).map(|i| (i as f64 / 100.0).powi(4)).collect();
        let idx = kneedle(&d).unwrap();
        assert!((55..=70).contains(&idx), "kneedle index {idx}");
    }

    #[test]
    fn infinite_tail_is_ignored() {
        let d = [0.1, 0.2, 0.3, f64::INFINITY];
        let idx = max_relative_gap(&d).unwrap();
        // The 0.1→0.2 gap (100%) wins; the jump into infinity is skipped.
        assert_eq!(idx, 0);
    }
}
