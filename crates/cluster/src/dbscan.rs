//! DBSCAN — Density-Based Spatial Clustering of Applications with Noise.
//!
//! The paper's §IV clustering core: "HAWC-CC identifies core points C as
//! those having at least m neighbors within the ε range … a point p_i
//! belongs to cluster C_m if it is a core point or a neighbor of a core
//! point within the ε range."

use geom::{KdTree, Point3};
use serde::{Deserialize, Serialize};

use crate::Clustering;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbscanParams {
    /// Neighbourhood radius `ε`.
    pub eps: f64,
    /// Minimum neighbours (including the point itself) for a core point —
    /// the paper's `m`.
    pub min_points: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        // min_points = 5 is the usual heuristic for 3-D data.
        DbscanParams {
            eps: 0.5,
            min_points: 5,
        }
    }
}

/// Reusable working memory for [`dbscan_with_scratch`].
///
/// Holds the neighbour buffer, the expansion queue and the
/// visited/enqueued bitmaps. After the first frame at a given capture
/// size the whole clustering stage performs no per-query heap
/// allocations: every radius query lands in the same neighbour buffer
/// and the queue/bitmaps only grow, never shrink.
#[derive(Debug, Default)]
pub struct DbscanScratch {
    neighbours: Vec<usize>,
    queue: Vec<usize>,
    visited: Vec<bool>,
    enqueued: Vec<bool>,
    max_queue_len: usize,
}

impl DbscanScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Largest expansion-queue length seen over the scratch's lifetime.
    ///
    /// The enqueued bitmap guarantees each point enters the queue at
    /// most once per run, so this never exceeds the capture size — the
    /// regression guard for the old duplicate-enqueue behaviour whose
    /// queue grew with the sum of core degrees.
    pub fn max_queue_len(&self) -> usize {
        self.max_queue_len
    }

    fn reset(&mut self, n: usize) {
        self.visited.clear();
        self.visited.resize(n, false);
        self.enqueued.clear();
        self.enqueued.resize(n, false);
        self.queue.clear();
    }
}

/// Runs DBSCAN over `points`.
///
/// Standard expansion: every unvisited core point seeds a cluster and the
/// cluster grows through density-reachable core points; border points join
/// the first cluster that reaches them; everything else is noise.
///
/// # Panics
///
/// Panics if `eps` is not positive or `min_points == 0`.
pub fn dbscan(points: &[Point3], params: &DbscanParams) -> Clustering {
    dbscan_with_scratch(points, params, &mut DbscanScratch::new())
}

/// [`dbscan`] with caller-owned working memory, for per-frame loops
/// that want the clustering stage allocation-free after warm-up.
///
/// # Panics
///
/// Panics if `eps` is not positive or `min_points == 0`.
pub fn dbscan_with_scratch(
    points: &[Point3],
    params: &DbscanParams,
    scratch: &mut DbscanScratch,
) -> Clustering {
    if points.is_empty() {
        assert!(params.eps > 0.0, "eps must be positive");
        assert!(params.min_points > 0, "min_points must be positive");
        return Clustering::all_noise(0);
    }
    let tree = KdTree::build(points);
    dbscan_with_tree(&tree, params, scratch)
}

/// Runs DBSCAN over the points already indexed by `tree` — the core of
/// both public entry points. Adaptive clustering calls this directly so
/// the tree built for the k-NN elbow is reused for the expansion
/// queries instead of being rebuilt.
///
/// Labels refer to the order of the slice the tree was built from.
///
/// # Panics
///
/// Panics if `eps` is not positive or `min_points == 0`.
pub fn dbscan_with_tree(
    tree: &KdTree,
    params: &DbscanParams,
    scratch: &mut DbscanScratch,
) -> Clustering {
    assert!(params.eps > 0.0, "eps must be positive");
    assert!(params.min_points > 0, "min_points must be positive");
    let points = tree.points();
    let n = points.len();
    if n == 0 {
        return Clustering::all_noise(0);
    }
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut n_clusters = 0usize;
    scratch.reset(n);
    let DbscanScratch {
        neighbours,
        queue,
        visited,
        enqueued,
        max_queue_len,
    } = scratch;

    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        tree.within_into(points[seed], params.eps, neighbours);
        if neighbours.len() < params.min_points {
            continue; // noise unless a later cluster absorbs it as border
        }
        let cluster = n_clusters;
        n_clusters += 1;
        labels[seed] = Some(cluster);
        enqueued[seed] = true;
        for &q in neighbours.iter() {
            // The enqueued bitmap admits each point at most once: a
            // point already labelled (or waiting in the queue) gains
            // nothing from a second visit, and dense blobs would
            // otherwise grow the queue with the sum of core degrees.
            if !enqueued[q] {
                enqueued[q] = true;
                queue.push(q);
            }
        }
        *max_queue_len = (*max_queue_len).max(queue.len());
        while let Some(p) = queue.pop() {
            if labels[p].is_none() {
                labels[p] = Some(cluster); // border or core member
            }
            if visited[p] {
                continue;
            }
            visited[p] = true;
            tree.within_into(points[p], params.eps, neighbours);
            if neighbours.len() >= params.min_points {
                // p is core: its neighbourhood is density-reachable.
                for &q in neighbours.iter() {
                    if !enqueued[q] {
                        enqueued[q] = true;
                        queue.push(q);
                    }
                }
                *max_queue_len = (*max_queue_len).max(queue.len());
            }
        }
    }
    Clustering::new(labels, n_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: Point3, n: usize, spread: f64) -> Vec<Point3> {
        // Deterministic quasi-random blob.
        (0..n)
            .map(|i| {
                let a = i as f64 * 2.399963; // golden angle
                let r = spread * ((i % 7) as f64 / 7.0);
                center
                    + geom::Vec3::new(
                        r * a.cos(),
                        r * a.sin(),
                        ((i % 3) as f64 - 1.0) * spread / 3.0,
                    )
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob(Point3::new(0.0, 0.0, 0.0), 40, 0.3);
        pts.extend(blob(Point3::new(10.0, 0.0, 0.0), 40, 0.3));
        let c = dbscan(
            &pts,
            &DbscanParams {
                eps: 0.5,
                min_points: 4,
            },
        );
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.noise_count(), 0);
        // Points from the same blob share a label.
        let l0 = c.labels()[0];
        assert!(c.labels()[..40].iter().all(|&l| l == l0));
        let l1 = c.labels()[40];
        assert!(c.labels()[40..].iter().all(|&l| l == l1));
        assert_ne!(l0, l1);
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob(Point3::new(0.0, 0.0, 0.0), 30, 0.3);
        pts.push(Point3::new(50.0, 0.0, 0.0));
        pts.push(Point3::new(-50.0, 3.0, 1.0));
        let c = dbscan(
            &pts,
            &DbscanParams {
                eps: 0.5,
                min_points: 4,
            },
        );
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.noise_count(), 2);
        assert!(c.labels()[30].is_none());
        assert!(c.labels()[31].is_none());
    }

    #[test]
    fn eps_too_small_fragments_everything_to_noise() {
        let pts = blob(Point3::new(0.0, 0.0, 0.0), 30, 1.0);
        let c = dbscan(
            &pts,
            &DbscanParams {
                eps: 1e-6,
                min_points: 4,
            },
        );
        assert_eq!(c.cluster_count(), 0);
        assert_eq!(c.noise_count(), 30);
    }

    #[test]
    fn eps_too_large_merges_blobs() {
        let mut pts = blob(Point3::new(0.0, 0.0, 0.0), 30, 0.3);
        pts.extend(blob(Point3::new(4.0, 0.0, 0.0), 30, 0.3));
        let c = dbscan(
            &pts,
            &DbscanParams {
                eps: 5.0,
                min_points: 4,
            },
        );
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn nonconvex_shape_stays_one_cluster() {
        // A thin L: density-based methods keep it together, parametric
        // ones would not (the §IV argument for DBSCAN).
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(Point3::new(i as f64 * 0.1, 0.0, 0.0));
        }
        for i in 1..50 {
            pts.push(Point3::new(0.0, i as f64 * 0.1, 0.0));
        }
        let c = dbscan(
            &pts,
            &DbscanParams {
                eps: 0.25,
                min_points: 3,
            },
        );
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], &DbscanParams::default());
        assert!(c.is_empty());
        assert_eq!(c.cluster_count(), 0);
    }

    #[test]
    fn min_points_one_promotes_every_point_to_core() {
        let pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(100.0, 0.0, 0.0)];
        let c = dbscan(
            &pts,
            &DbscanParams {
                eps: 0.1,
                min_points: 1,
            },
        );
        // Each isolated point becomes its own single-member cluster.
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn zero_eps_panics() {
        let _ = dbscan(
            &[],
            &DbscanParams {
                eps: 0.0,
                min_points: 3,
            },
        );
    }

    #[test]
    fn dense_blob_queue_never_exceeds_point_count() {
        // Regression: expansion used to push a point once per core
        // neighbour, so a dense blob (every point within ε of every
        // other) grew the queue to O(n²) entries. The enqueued bitmap
        // bounds it at n.
        let n = 400;
        let pts = blob(Point3::new(0.0, 0.0, 0.0), n, 0.2);
        let mut scratch = DbscanScratch::new();
        let c = dbscan_with_scratch(
            &pts,
            &DbscanParams {
                eps: 2.0, // every pair is within ε: all points are core
                min_points: 4,
            },
            &mut scratch,
        );
        assert_eq!(c.cluster_count(), 1);
        assert!(
            scratch.max_queue_len() <= n,
            "queue peaked at {} for {} points",
            scratch.max_queue_len(),
            n
        );
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // One scratch across captures of different sizes and ε must
        // give the same partitions as fresh allocations each time.
        let mut scratch = DbscanScratch::new();
        let captures: Vec<(Vec<Point3>, DbscanParams)> = vec![
            (
                blob(Point3::ZERO, 300, 0.4),
                DbscanParams {
                    eps: 0.5,
                    min_points: 4,
                },
            ),
            (
                {
                    let mut p = blob(Point3::ZERO, 40, 0.3);
                    p.extend(blob(Point3::new(10.0, 0.0, 0.0), 40, 0.3));
                    p
                },
                DbscanParams {
                    eps: 0.5,
                    min_points: 4,
                },
            ),
            (
                blob(Point3::new(3.0, 1.0, 0.0), 12, 1.5),
                DbscanParams {
                    eps: 0.2,
                    min_points: 3,
                },
            ),
        ];
        for (pts, params) in &captures {
            let reused = dbscan_with_scratch(pts, params, &mut scratch);
            let fresh = dbscan(pts, params);
            assert_eq!(reused.labels(), fresh.labels());
            assert_eq!(reused.cluster_count(), fresh.cluster_count());
        }
    }

    #[test]
    fn border_points_join_exactly_one_cluster() {
        // A bridge point between two dense blobs, reachable from both but
        // not core: it must end up labelled once.
        let mut pts = blob(Point3::new(0.0, 0.0, 0.0), 20, 0.2);
        pts.extend(blob(Point3::new(2.0, 0.0, 0.0), 20, 0.2));
        pts.push(Point3::new(1.0, 0.0, 0.0));
        let c = dbscan(
            &pts,
            &DbscanParams {
                eps: 0.9,
                min_points: 6,
            },
        );
        let bridge = c.labels()[40];
        if let Some(l) = bridge {
            assert!(l < c.cluster_count());
        }
        // Every labelled point has a valid cluster id (checked by
        // Clustering::new), and the label vector covers all points.
        assert_eq!(c.len(), 41);
    }
}
