//! The shared clustering result type.

use geom::Point3;
use serde::{Deserialize, Serialize};

/// A partition of a point set into clusters plus noise.
///
/// `labels[i]` is `Some(c)` when point `i` belongs to cluster `c`
/// (`0 <= c < cluster_count`) and `None` when it was marked as noise.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    labels: Vec<Option<usize>>,
    n_clusters: usize,
}

impl Clustering {
    /// Creates a clustering from raw labels.
    ///
    /// # Panics
    ///
    /// Panics if any label is `>= n_clusters`.
    pub fn new(labels: Vec<Option<usize>>, n_clusters: usize) -> Self {
        for l in labels.iter().flatten() {
            assert!(
                *l < n_clusters,
                "label {l} out of range for {n_clusters} clusters"
            );
        }
        Clustering { labels, n_clusters }
    }

    /// An empty clustering over `n` points (everything is noise).
    pub fn all_noise(n: usize) -> Self {
        Clustering {
            labels: vec![None; n],
            n_clusters: 0,
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.n_clusters
    }

    /// Number of points (members + noise).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the clustering covers no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-point labels.
    pub fn labels(&self) -> &[Option<usize>] {
        &self.labels
    }

    /// Number of points labelled as noise.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Member indices per cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (i, l) in self.labels.iter().enumerate() {
            if let Some(c) = l {
                out[*c].push(i);
            }
        }
        out
    }

    /// Materialises each cluster as its member points.
    pub fn cluster_points(&self, points: &[Point3]) -> Vec<Vec<Point3>> {
        self.clusters()
            .into_iter()
            .map(|idxs| idxs.into_iter().map(|i| points[i]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Clustering::new(vec![Some(0), None, Some(1), Some(0)], 2);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.noise_count(), 1);
        assert_eq!(c.clusters(), vec![vec![0, 3], vec![2]]);
    }

    #[test]
    fn cluster_points_materialise() {
        let pts = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
        ];
        let c = Clustering::new(vec![Some(0), None, Some(0)], 1);
        let groups = c.cluster_points(&pts);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], vec![pts[0], pts[2]]);
    }

    #[test]
    fn all_noise() {
        let c = Clustering::all_noise(5);
        assert_eq!(c.cluster_count(), 0);
        assert_eq!(c.noise_count(), 5);
        assert!(!c.is_empty());
        assert!(Clustering::all_noise(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let _ = Clustering::new(vec![Some(2)], 2);
    }
}
