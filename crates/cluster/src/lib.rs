//! Point-cloud clustering for HAWC-CC.
//!
//! §IV of the paper partitions each LiDAR capture into per-object clusters
//! before classification. This crate implements:
//!
//! * [`dbscan`] — density-based spatial clustering (the paper's choice),
//! * [`knee`] — the k-NN-distance elbow locator that picks `ε`,
//! * [`adaptive_dbscan`] — the paper's **adaptive clustering**: a fresh
//!   optimal `ε` per capture from the elbow of its sorted k-NN curve,
//! * baselines the paper compares against: fixed-`ε` DBSCAN (Table IV),
//!   [`hierarchical`] agglomerative clustering (Table IV's catastrophic
//!   row), [`kmeans`] and [`gmm`] (§IV's discussion of parametric
//!   methods).
//!
//! # Examples
//!
//! ```
//! use cluster::{adaptive_dbscan, AdaptiveConfig};
//! use geom::Point3;
//!
//! // Two well-separated blobs.
//! let mut pts = Vec::new();
//! for i in 0..20 {
//!     let t = i as f64 * 0.01;
//!     pts.push(Point3::new(t, 0.0, 0.0));
//!     pts.push(Point3::new(5.0 + t, 0.0, 0.0));
//! }
//! let clustering = adaptive_dbscan(&pts, &AdaptiveConfig::default());
//! assert_eq!(clustering.cluster_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod dbscan;
mod gmm;
mod hierarchical;
mod kmeans;
pub mod knee;
mod labels;

pub use adaptive::{
    adaptive_dbscan, adaptive_dbscan_with_scratch, adaptive_eps, adaptive_eps_detailed,
    adaptive_eps_from_tree, AdaptiveConfig, EpsChoice,
};
pub use dbscan::{dbscan, dbscan_with_scratch, dbscan_with_tree, DbscanParams, DbscanScratch};
pub use gmm::{gmm, GmmParams};
pub use hierarchical::{hierarchical, Linkage};
pub use kmeans::{kmeans, KmeansParams};
pub use labels::Clustering;
