//! Per-layer analytic latency models of the paper's two edge devices.

use nn::profile::{NetworkProfile, OpKind};
use serde::{Deserialize, Serialize};

/// Numeric precision of a deployed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point.
    Fp32,
    /// Post-training-quantized 8-bit integers.
    Int8,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::Fp32 => "FP32",
            Precision::Int8 => "Int8",
        })
    }
}

/// Per-precision operator costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct OpCosts {
    /// ns per MAC for 2-D convolutions.
    conv_ns_per_mac: f64,
    /// ns per MAC for PointNet's shared per-point MLP (a 1×1 conv): the
    /// Coral TPU runs it at conv speed, the Jetson's GPU at dense speed.
    pointwise_ns_per_mac: f64,
    /// ns per MAC for plain fully connected layers.
    dense_ns_per_mac: f64,
    /// Fixed per-layer launch cost for conv-class ops, ms.
    conv_layer_ms: f64,
    /// Fixed per-layer launch cost for dense ops, ms — on the Coral TPU
    /// this includes the host offload round-trip.
    dense_layer_ms: f64,
    /// Fixed cost per cheap layer (pool/norm/activation), ms.
    cheap_layer_ms: f64,
}

/// An analytic latency model of one edge device.
///
/// The model prices a network as
/// `Σ_layers (per-layer launch cost + MACs × per-MAC cost)`, with costs
/// depending on the operator class and precision. Constants are
/// calibrated against the paper's Table II measurements.
///
/// # Examples
///
/// ```
/// use edge::{DeviceModel, Precision};
/// use nn::profile::{LayerProfile, NetworkProfile, OpKind};
///
/// let profile = NetworkProfile {
///     layers: vec![LayerProfile {
///         name: "conv2d".into(),
///         kind: OpKind::Conv,
///         params: 1000,
///         macs: 1_000_000,
///         output_elems: 5184,
///     }],
/// };
/// let jetson = DeviceModel::jetson_nano();
/// assert!(jetson.latency_ms(&profile, Precision::Int8)
///     < jetson.latency_ms(&profile, Precision::Fp32));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    name: String,
    fp32: OpCosts,
    int8: OpCosts,
}

impl DeviceModel {
    /// The Nvidia Jetson Nano (Maxwell GPU, 4 GB): a general-purpose GPU
    /// that runs every operator; int8 roughly halves convolution cost and
    /// shaves dense cost (Table II: HAWC 0.54→0.29 ms, PointNet
    /// 12.15→10.75 ms, AutoEncoder 0.04→0.03 ms).
    pub fn jetson_nano() -> Self {
        DeviceModel {
            name: "Jetson Nano".into(),
            fp32: OpCosts {
                conv_ns_per_mac: 0.35,
                pointwise_ns_per_mac: 0.25,
                dense_ns_per_mac: 0.25,
                conv_layer_ms: 0.006,
                dense_layer_ms: 0.005,
                cheap_layer_ms: 0.002,
            },
            int8: OpCosts {
                conv_ns_per_mac: 0.175,
                pointwise_ns_per_mac: 0.22,
                dense_ns_per_mac: 0.22,
                conv_layer_ms: 0.004,
                dense_layer_ms: 0.003,
                cheap_layer_ms: 0.001,
            },
        }
    }

    /// The Coral Dev Board: fp32 falls back to the slow ARM CPU; int8
    /// runs conv-class ops on the edge TPU but **cannot run fully
    /// connected layers**, which are delegated to the host per-op — the
    /// §VII-B anomaly that makes the int8 AutoEncoder slower than its
    /// fp32 build (0.07 → 1.05 ms) while HAWC speeds up 3×.
    pub fn coral_dev_board() -> Self {
        DeviceModel {
            name: "Coral Dev Board".into(),
            fp32: OpCosts {
                conv_ns_per_mac: 1.2,
                pointwise_ns_per_mac: 1.2,
                dense_ns_per_mac: 1.15,
                conv_layer_ms: 0.02,
                dense_layer_ms: 0.004,
                cheap_layer_ms: 0.004,
            },
            int8: OpCosts {
                conv_ns_per_mac: 0.015,      // 4-TOPS TPU
                pointwise_ns_per_mac: 0.015, // 1x1 convs run on the TPU too
                dense_ns_per_mac: 0.5,       // falls back to the CPU…
                conv_layer_ms: 0.03,
                dense_layer_ms: 0.12, // …after a host round-trip
                cheap_layer_ms: 0.01,
            },
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Predicted single-sample inference latency in milliseconds.
    pub fn latency_ms(&self, profile: &NetworkProfile, precision: Precision) -> f64 {
        let costs = match precision {
            Precision::Fp32 => &self.fp32,
            Precision::Int8 => &self.int8,
        };
        profile
            .layers
            .iter()
            .map(|layer| match layer.kind {
                OpKind::Conv => {
                    costs.conv_layer_ms + layer.macs as f64 * costs.conv_ns_per_mac * 1e-6
                }
                OpKind::PointwiseMlp => {
                    costs.conv_layer_ms + layer.macs as f64 * costs.pointwise_ns_per_mac * 1e-6
                }
                OpKind::Dense => {
                    costs.dense_layer_ms + layer.macs as f64 * costs.dense_ns_per_mac * 1e-6
                }
                OpKind::Pool | OpKind::Norm | OpKind::Activation => costs.cheap_layer_ms,
                OpKind::Reshape => 0.0,
            })
            .sum()
    }

    /// Quantization speedup `fp32 / int8` for a network on this device
    /// (values below 1 mean int8 is *slower*, as for dense-heavy models
    /// on the Coral).
    pub fn speedup(&self, profile: &NetworkProfile) -> f64 {
        self.latency_ms(profile, Precision::Fp32) / self.latency_ms(profile, Precision::Int8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::profile::LayerProfile;

    fn layer(kind: OpKind, macs: u64) -> LayerProfile {
        LayerProfile {
            name: format!("{kind:?}"),
            kind,
            params: 0,
            macs,
            output_elems: 1,
        }
    }

    /// HAWC-like: conv-dominated, a couple of small dense layers.
    fn hawc_like() -> NetworkProfile {
        NetworkProfile {
            layers: vec![
                layer(OpKind::Conv, 330_000),
                layer(OpKind::Norm, 0),
                layer(OpKind::Activation, 0),
                layer(OpKind::Pool, 0),
                layer(OpKind::Conv, 380_000),
                layer(OpKind::Norm, 0),
                layer(OpKind::Activation, 0),
                layer(OpKind::Pool, 0),
                layer(OpKind::Conv, 290_000),
                layer(OpKind::Norm, 0),
                layer(OpKind::Activation, 0),
                layer(OpKind::Pool, 0),
                layer(OpKind::Reshape, 0),
                layer(OpKind::Dense, 33_000),
                layer(OpKind::Activation, 0),
                layer(OpKind::Dense, 260),
            ],
        }
    }

    /// PointNet-like: huge shared MLP + dense head.
    fn pointnet_like() -> NetworkProfile {
        NetworkProfile {
            layers: vec![
                layer(OpKind::PointwiseMlp, 46_500_000),
                layer(OpKind::Activation, 0),
                layer(OpKind::Pool, 0),
                layer(OpKind::Dense, 524_000),
                layer(OpKind::Dense, 131_000),
                layer(OpKind::Dense, 512),
            ],
        }
    }

    /// AutoEncoder-like: all dense, tiny.
    fn autoencoder_like() -> NetworkProfile {
        NetworkProfile {
            layers: (0..8).map(|_| layer(OpKind::Dense, 3_300)).collect(),
        }
    }

    #[test]
    fn jetson_orderings_match_table2() {
        let jetson = DeviceModel::jetson_nano();
        let hawc = jetson.latency_ms(&hawc_like(), Precision::Fp32);
        let pn = jetson.latency_ms(&pointnet_like(), Precision::Fp32);
        let ae = jetson.latency_ms(&autoencoder_like(), Precision::Fp32);
        // Table II FP32: AE (0.04) < HAWC (0.54) < PointNet (12.15).
        assert!(
            ae < hawc && hawc < pn,
            "ae {ae:.3} hawc {hawc:.3} pn {pn:.3}"
        );
        // Magnitudes within ~2x of the paper.
        assert!((0.2..=1.2).contains(&hawc), "hawc {hawc}");
        assert!((6.0..=25.0).contains(&pn), "pn {pn}");
        assert!(ae < 0.15, "ae {ae}");
    }

    #[test]
    fn jetson_quantization_speedups() {
        let jetson = DeviceModel::jetson_nano();
        let s_hawc = jetson.speedup(&hawc_like());
        let s_pn = jetson.speedup(&pointnet_like());
        let s_ae = jetson.speedup(&autoencoder_like());
        // Table II: HAWC 1.87x > AE 1.62x > PointNet 1.13x.
        assert!(
            s_hawc > s_ae && s_ae > s_pn,
            "{s_hawc:.2} {s_ae:.2} {s_pn:.2}"
        );
        assert!(s_pn > 1.0);
    }

    #[test]
    fn coral_tpu_anomaly_dense_models_slow_down() {
        let coral = DeviceModel::coral_dev_board();
        // The AutoEncoder regresses under quantization (0.07 → 1.05 ms).
        let s_ae = coral.speedup(&autoencoder_like());
        assert!(
            s_ae < 1.0,
            "int8 AE should be slower on the Coral, speedup {s_ae:.2}"
        );
        // HAWC enjoys a large speedup (1.88 → 0.62 ms ≈ 3x).
        let s_hawc = coral.speedup(&hawc_like());
        assert!(s_hawc > 2.0, "hawc speedup {s_hawc:.2}");
        // PointNet speeds up massively (57.14 → 1.09 ≈ 52x): its shared
        // MLP is conv-class work the TPU eats.
        let s_pn = coral.speedup(&pointnet_like());
        assert!(s_pn > 20.0, "pointnet speedup {s_pn:.2}");
    }

    #[test]
    fn coral_int8_magnitudes_match_table2() {
        let coral = DeviceModel::coral_dev_board();
        let hawc = coral.latency_ms(&hawc_like(), Precision::Int8);
        let pn = coral.latency_ms(&pointnet_like(), Precision::Int8);
        let ae = coral.latency_ms(&autoencoder_like(), Precision::Int8);
        // Table II Int8: HAWC 0.62, PointNet 1.09, AE 1.05.
        assert!((0.3..=1.0).contains(&hawc), "hawc {hawc}");
        assert!((0.7..=2.2).contains(&pn), "pn {pn}");
        assert!((0.6..=1.6).contains(&ae), "ae {ae}");
        // HAWC is both fastest and (per Table I) most accurate.
        assert!(hawc < pn && hawc < ae);
    }

    #[test]
    fn empty_profile_costs_nothing() {
        let jetson = DeviceModel::jetson_nano();
        assert_eq!(
            jetson.latency_ms(&NetworkProfile::default(), Precision::Fp32),
            0.0
        );
    }

    #[test]
    fn names() {
        assert_eq!(DeviceModel::jetson_nano().name(), "Jetson Nano");
        assert_eq!(DeviceModel::coral_dev_board().name(), "Coral Dev Board");
    }
}
