//! Pole thermal simulation (paper Fig. 10).
//!
//! The paper monitors the device compartment of a pole on the ASU campus
//! through the 2023-06-24 → 2023-07-11 heat wave, cross-referenced with
//! Visual Crossing weather data: pole temperature tracks weather with a
//! ~10 °C offset during peak heat and under 5 °C at night, peaking at
//! 57.81 °C (above the Coral's rated 0–50 °C envelope — which it
//! survived). This module generates an equivalent series: a diurnal
//! weather model plus a pole model with solar gain and first-order
//! thermal lag.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The Coral's rated operating ceiling, °C — the envelope the paper's
/// pole exceeded and survived.
pub const RATED_LIMIT_C: f64 = 50.0;

/// One temperature reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// Seconds since the start of the campaign.
    pub t_s: f64,
    /// Ambient (weather service) temperature, °C.
    pub weather_c: f64,
    /// Temperature inside the pole compartment, °C.
    pub pole_c: f64,
}

/// Configuration of the thermal campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Number of simulated days (paper window: 18 days).
    pub days: usize,
    /// Sampling period in minutes (paper: one reading every 1.7 min).
    pub period_min: f64,
    /// Mean daily minimum ambient temperature, °C (Phoenix June ≈ 28).
    pub ambient_min_c: f64,
    /// Mean daily maximum ambient temperature, °C (Phoenix June ≈ 43).
    pub ambient_max_c: f64,
    /// Day-to-day weather variation, °C (1σ).
    pub daily_variation_c: f64,
    /// Peak solar gain added to the pole compartment at midday, °C.
    pub solar_gain_c: f64,
    /// First-order thermal lag of the compartment, in hours.
    pub lag_hours: f64,
    /// Sensor noise, °C (1σ).
    pub noise_c: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            days: 18,
            period_min: 1.7,
            ambient_min_c: 27.0,
            ambient_max_c: 43.0,
            daily_variation_c: 2.0,
            solar_gain_c: 12.0,
            lag_hours: 1.5,
            noise_c: 0.3,
        }
    }
}

/// Summary of a campaign (the numbers §VII-D quotes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSummary {
    /// Maximum pole temperature, °C.
    pub pole_max_c: f64,
    /// Minimum pole temperature, °C.
    pub pole_min_c: f64,
    /// Mean pole temperature, °C.
    pub pole_mean_c: f64,
    /// Mean pole−weather offset during the hottest quarter of each day.
    pub peak_offset_c: f64,
    /// Mean pole−weather offset during the coolest quarter of each day.
    pub night_offset_c: f64,
    /// Fraction of readings above the Coral's rated 50 °C limit.
    pub above_rated_fraction: f64,
}

/// Simulates the campaign, returning the reading series.
pub fn simulate<R: Rng + ?Sized>(cfg: &ThermalConfig, rng: &mut R) -> Vec<Reading> {
    let samples_per_day = (24.0 * 60.0 / cfg.period_min).round() as usize;
    let dt_s = cfg.period_min * 60.0;
    let mut out = Vec::with_capacity(cfg.days * samples_per_day);
    let mean = (cfg.ambient_min_c + cfg.ambient_max_c) / 2.0;
    let amp = (cfg.ambient_max_c - cfg.ambient_min_c) / 2.0;
    // First-order lag coefficient per sample.
    let alpha = 1.0 - (-dt_s / (cfg.lag_hours * 3600.0)).exp();
    let mut pole = mean;
    for day in 0..cfg.days {
        // Day-to-day offset (a slow weather system).
        let day_offset = gaussian(rng) * cfg.daily_variation_c;
        for s in 0..samples_per_day {
            let t_s = (day * samples_per_day + s) as f64 * dt_s;
            let hour = (t_s / 3600.0) % 24.0;
            // Diurnal cycle: minimum ~05:00, maximum ~17:00.
            let phase = (hour - 5.0) / 24.0 * std::f64::consts::TAU;
            let weather = mean + day_offset - amp * phase.cos() + gaussian(rng) * 0.2;
            // Solar load on the dark pole: daylight only, peaking ~14:00.
            let solar = if (7.0..19.0).contains(&hour) {
                cfg.solar_gain_c * (std::f64::consts::PI * (hour - 7.0) / 12.0).sin()
            } else {
                0.0
            };
            let target = weather + solar;
            pole += alpha * (target - pole);
            out.push(Reading {
                t_s,
                weather_c: weather,
                pole_c: pole + gaussian(rng) * cfg.noise_c,
            });
        }
    }
    if let Some(last) = out.last() {
        obs::set_gauge("edge.pole_c", last.pole_c);
        obs::incr(
            "edge.over_envelope",
            out.iter().filter(|r| r.pole_c > RATED_LIMIT_C).count() as u64,
        );
    }
    out
}

/// Summarises a reading series.
///
/// # Panics
///
/// Panics on an empty series.
pub fn summarize(readings: &[Reading]) -> ThermalSummary {
    assert!(!readings.is_empty(), "no readings to summarise");
    let mut pole_max = f64::NEG_INFINITY;
    let mut pole_min = f64::INFINITY;
    let mut pole_sum = 0.0;
    for r in readings {
        pole_max = pole_max.max(r.pole_c);
        pole_min = pole_min.min(r.pole_c);
        pole_sum += r.pole_c;
    }
    // Hot/cold offsets: bucket readings by weather quartile.
    let mut by_weather: Vec<&Reading> = readings.iter().collect();
    by_weather.sort_by(|a, b| a.weather_c.partial_cmp(&b.weather_c).unwrap());
    let q = readings.len() / 4;
    let night: f64 = by_weather[..q.max(1)]
        .iter()
        .map(|r| r.pole_c - r.weather_c)
        .sum::<f64>()
        / q.max(1) as f64;
    let peak: f64 = by_weather[readings.len() - q.max(1)..]
        .iter()
        .map(|r| r.pole_c - r.weather_c)
        .sum::<f64>()
        / q.max(1) as f64;
    let above = readings.iter().filter(|r| r.pole_c > RATED_LIMIT_C).count();
    ThermalSummary {
        pole_max_c: pole_max,
        pole_min_c: pole_min,
        pole_mean_c: pole_sum / readings.len() as f64,
        peak_offset_c: peak,
        night_offset_c: night,
        above_rated_fraction: above as f64 / readings.len() as f64,
    }
}

/// Hysteresis thresholds for the thermal throttle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleConfig {
    /// Temperature at or above which the throttle trips, °C.
    pub trip_c: f64,
    /// Temperature at or below which a tripped throttle clears, °C.
    /// Must sit below `trip_c` — the gap is the hysteresis band that
    /// keeps the state from flapping around the threshold.
    pub clear_c: f64,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        ThrottleConfig {
            trip_c: RATED_LIMIT_C,
            clear_c: RATED_LIMIT_C - 5.0,
        }
    }
}

/// Whether the compartment is inside or outside its thermal envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThrottleState {
    /// Within the rated envelope: full-precision operation.
    Nominal,
    /// Over the envelope: shed load until the compartment cools back
    /// through `clear_c`. Under the supervisor's fp32-reference
    /// precision policy this is the signal that drops inference to
    /// int8; under the default int8-fast policy the integer path is
    /// already the steady state and the signal is observational.
    Throttled,
}

/// Queryable over-envelope state with hysteresis.
///
/// The paper's pole exceeded the Coral's rated 50 °C and survived, but
/// a deployed service should shed load rather than gamble: this
/// monitor turns the raw `edge.pole_c` gauge into a two-state throttle
/// signal the counting supervisor can act on. Hysteresis (trip at
/// `trip_c`, clear at `clear_c < trip_c`) guarantees the precision
/// ladder cannot flap on noise around the threshold. With int8 as the
/// default fast path the rung only sheds work when the supervisor runs
/// its fp32-reference policy; otherwise the trip count and gauge serve
/// as envelope telemetry.
#[derive(Debug, Clone)]
pub struct ThrottleMonitor {
    cfg: ThrottleConfig,
    state: ThrottleState,
    trips: u64,
    last_c: Option<f64>,
}

impl Default for ThrottleMonitor {
    fn default() -> Self {
        ThrottleMonitor::new(ThrottleConfig::default())
    }
}

impl ThrottleMonitor {
    /// Creates a monitor in the [`ThrottleState::Nominal`] state.
    ///
    /// # Panics
    ///
    /// Panics if `clear_c >= trip_c` (no hysteresis band) or either
    /// threshold is non-finite.
    pub fn new(cfg: ThrottleConfig) -> Self {
        assert!(
            cfg.trip_c.is_finite() && cfg.clear_c.is_finite(),
            "throttle thresholds must be finite"
        );
        assert!(
            cfg.clear_c < cfg.trip_c,
            "clear_c must sit below trip_c for hysteresis"
        );
        ThrottleMonitor {
            cfg,
            state: ThrottleState::Nominal,
            trips: 0,
            last_c: None,
        }
    }

    /// Feeds one compartment reading, returning the resulting state.
    /// Non-finite readings are ignored (the state holds).
    pub fn update(&mut self, pole_c: f64) -> ThrottleState {
        if !pole_c.is_finite() {
            return self.state;
        }
        self.last_c = Some(pole_c);
        match self.state {
            ThrottleState::Nominal if pole_c >= self.cfg.trip_c => {
                self.state = ThrottleState::Throttled;
                self.trips += 1;
                obs::incr("edge.throttle_trips", 1);
            }
            ThrottleState::Throttled if pole_c <= self.cfg.clear_c => {
                self.state = ThrottleState::Nominal;
            }
            _ => {}
        }
        obs::set_gauge(
            "edge.throttled",
            if self.is_throttled() { 1.0 } else { 0.0 },
        );
        self.state
    }

    /// Current state.
    pub fn state(&self) -> ThrottleState {
        self.state
    }

    /// True while over the envelope.
    pub fn is_throttled(&self) -> bool {
        self.state == ThrottleState::Throttled
    }

    /// Times the throttle has tripped since construction.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// The last finite reading fed to [`ThrottleMonitor::update`] —
    /// the pole's thermal gauge as reported over the fleet wire.
    pub fn last_reading(&self) -> Option<f64> {
        self.last_c
    }

    /// The thresholds.
    pub fn config(&self) -> &ThrottleConfig {
        &self.cfg
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run() -> (Vec<Reading>, ThermalSummary) {
        let mut rng = StdRng::seed_from_u64(2023);
        let readings = simulate(&ThermalConfig::default(), &mut rng);
        let summary = summarize(&readings);
        (readings, summary)
    }

    #[test]
    fn series_has_paper_scale() {
        let (readings, _) = run();
        // 18 days at 1.7 min ≈ 847 samples/day.
        let per_day = (24.0_f64 * 60.0 / 1.7).round() as usize;
        assert_eq!(readings.len(), 18 * per_day);
        // Timestamps strictly increase.
        assert!(readings.windows(2).all(|w| w[1].t_s > w[0].t_s));
    }

    #[test]
    fn summary_matches_figure_10() {
        let (_, s) = run();
        // Paper: max 57.81, min 21.00, mean 41.95 °C; peak offset ≈10 °C,
        // night offset <5 °C. Match the shape, allow simulator slack.
        assert!(
            (50.0..=62.0).contains(&s.pole_max_c),
            "max {}",
            s.pole_max_c
        );
        assert!(
            (18.0..=30.0).contains(&s.pole_min_c),
            "min {}",
            s.pole_min_c
        );
        assert!(
            (36.0..=46.0).contains(&s.pole_mean_c),
            "mean {}",
            s.pole_mean_c
        );
        assert!(
            s.peak_offset_c > 6.0 && s.peak_offset_c < 14.0,
            "peak offset {}",
            s.peak_offset_c
        );
        assert!(s.night_offset_c < 5.0, "night offset {}", s.night_offset_c);
        assert!(s.night_offset_c < s.peak_offset_c);
    }

    #[test]
    fn exceeds_rated_envelope_sometimes() {
        // The paper observes readings above the Coral's 50 °C rating.
        let (_, s) = run();
        assert!(s.above_rated_fraction > 0.0);
        assert!(s.above_rated_fraction < 0.5);
    }

    #[test]
    fn pole_lags_and_exceeds_weather_in_daytime() {
        let (readings, _) = run();
        // At 14:00 on day 3 the pole should be hotter than the ambient.
        let target_t = (3 * 24 + 14) as f64 * 3600.0;
        let r = readings
            .iter()
            .min_by(|a, b| {
                (a.t_s - target_t)
                    .abs()
                    .partial_cmp(&(b.t_s - target_t).abs())
                    .unwrap()
            })
            .unwrap();
        assert!(r.pole_c > r.weather_c + 3.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate(&ThermalConfig::default(), &mut StdRng::seed_from_u64(1));
        let b = simulate(&ThermalConfig::default(), &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "no readings")]
    fn empty_summary_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    fn throttle_trips_and_clears_with_hysteresis() {
        let mut m = ThrottleMonitor::new(ThrottleConfig {
            trip_c: 50.0,
            clear_c: 45.0,
        });
        assert_eq!(m.update(49.9), ThrottleState::Nominal);
        assert_eq!(m.update(50.0), ThrottleState::Throttled);
        // Inside the hysteresis band: stays throttled.
        assert_eq!(m.update(47.0), ThrottleState::Throttled);
        assert_eq!(m.update(45.1), ThrottleState::Throttled);
        assert_eq!(m.update(45.0), ThrottleState::Nominal);
        assert_eq!(m.trips(), 1);
    }

    #[test]
    fn throttle_does_not_flap_on_threshold_noise() {
        // ±0.5 °C sensor noise centred on the 50 °C trip line: with a
        // 5 °C band the state changes exactly once, not per sample.
        let mut m = ThrottleMonitor::default();
        let mut transitions = 0;
        let mut last = m.state();
        for i in 0..200 {
            let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
            let s = m.update(50.0 + noise);
            if s != last {
                transitions += 1;
                last = s;
            }
        }
        assert_eq!(transitions, 1, "throttle flapped at the threshold");
        assert!(m.is_throttled());
    }

    #[test]
    fn throttle_tracks_a_full_thermal_campaign() {
        // Driven by the Fig. 10 simulation, the throttle must trip on
        // the hottest afternoons and clear overnight — several trips,
        // not one and not hundreds.
        let (readings, summary) = run();
        assert!(summary.above_rated_fraction > 0.0);
        let mut m = ThrottleMonitor::default();
        for r in &readings {
            m.update(r.pole_c);
        }
        assert!(
            (1..=2 * 18).contains(&(m.trips() as usize)),
            "trips {}",
            m.trips()
        );
    }

    #[test]
    fn non_finite_readings_hold_state() {
        let mut m = ThrottleMonitor::default();
        m.update(60.0);
        assert!(m.is_throttled());
        assert_eq!(m.update(f64::NAN), ThrottleState::Throttled);
        assert_eq!(m.update(f64::INFINITY), ThrottleState::Throttled);
        assert_eq!(m.trips(), 1);
    }

    #[test]
    #[should_panic(expected = "clear_c must sit below trip_c")]
    fn inverted_thresholds_panic() {
        let _ = ThrottleMonitor::new(ThrottleConfig {
            trip_c: 45.0,
            clear_c: 50.0,
        });
    }
}
