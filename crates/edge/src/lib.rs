//! Edge-deployment substrates (paper §VI, §VII-B/D).
//!
//! The paper deploys HAWC-CC on an Nvidia Jetson Nano and a Coral Dev
//! Board mounted inside the blue-light pole. Neither device exists in
//! this reproduction, so this crate provides:
//!
//! * [`DeviceModel`] — analytic per-layer latency models for both
//!   devices, calibrated so the Table II orderings hold, including the
//!   Coral anomaly where the int8 AutoEncoder is *slower* than fp32
//!   because the edge TPU cannot run fully connected layers and every
//!   dense op pays a host round-trip;
//! * [`thermal`] — the weather/pole thermal simulation behind Fig. 10's
//!   summer-deployment study, plus a hysteresis
//!   [`ThrottleMonitor`](thermal::ThrottleMonitor) turning compartment
//!   temperature into a queryable over-envelope signal. The counting
//!   supervisor runs int8 as its default fast path; under its
//!   fp32-reference policy this signal drives the fp32→int8 shedding
//!   rung, and otherwise it is envelope telemetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
pub mod thermal;

pub use device::{DeviceModel, Precision};
pub use thermal::{ThrottleConfig, ThrottleMonitor, ThrottleState};
