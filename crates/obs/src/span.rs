//! Scoped stage timing and the per-frame draft.
//!
//! A *frame* is one `CrowdCounter::count` call (or any other unit of
//! work that wants per-run provenance). The pipeline opens a draft with
//! [`frame_start`], stages annotate it as they run, and
//! [`frame_finish`] turns it into a [`FrameRecord`] for the journal.
//!
//! The draft lives in a thread-local and is *independent* of the global
//! enable switch: stage timings feed `CountResult`'s latency fields,
//! which exist with telemetry off too. Only the journal write and the
//! histogram observations are gated on [`crate::enabled`]. Timing never
//! feeds back into any computation, so counts are bit-identical with
//! telemetry on or off.

use std::cell::RefCell;
use std::time::Instant;

use crate::journal::{ClusterVerdict, FrameRecord};

thread_local! {
    static DRAFT: RefCell<Option<FrameRecord>> = const { RefCell::new(None) };
}

/// Stage timings extracted from a finished frame.
#[derive(Debug, Clone, Default)]
pub struct FrameStats {
    /// `(stage, ms)` pairs in first-seen order.
    pub stages_ms: Vec<(String, f64)>,
}

impl FrameStats {
    /// Total milliseconds recorded for `stage` (0 if absent).
    pub fn stage_ms(&self, stage: &str) -> f64 {
        self.stages_ms
            .iter()
            .find(|(name, _)| name == stage)
            .map_or(0.0, |(_, ms)| *ms)
    }
}

/// Opens a frame draft on this thread, replacing any unfinished one.
pub fn frame_start(source: &str) {
    DRAFT.with(|d| {
        *d.borrow_mut() = Some(FrameRecord {
            source: source.to_string(),
            ..FrameRecord::default()
        });
    });
}

/// True while a frame draft is open on this thread.
pub fn frame_active() -> bool {
    DRAFT.with(|d| d.borrow().is_some())
}

fn with_draft(f: impl FnOnce(&mut FrameRecord)) {
    DRAFT.with(|d| {
        if let Some(draft) = d.borrow_mut().as_mut() {
            f(draft);
        }
    });
}

/// Attaches the harness RNG seed to the open frame.
pub fn frame_seed(seed: u64) {
    with_draft(|d| d.seed = Some(seed));
}

/// Records how many points entered clustering.
pub fn frame_points_in(n: usize) {
    with_draft(|d| d.points_in = n);
}

/// Records the adaptive-ε decision (and the knee index it came from,
/// when the elbow search produced one).
pub fn frame_eps(eps: f64, knee_index: Option<usize>) {
    with_draft(|d| {
        d.eps = Some(eps);
        d.knee_index = knee_index;
    });
}

/// Records how many clusters the clustering stage produced.
pub fn frame_clusters(found: usize) {
    with_draft(|d| d.clusters_found = found);
}

/// Records how many clusters were dropped before classification.
pub fn frame_skipped(n: usize) {
    with_draft(|d| d.clusters_skipped = n);
}

/// Records the supervising loop's health state and degradation-ladder
/// rung for the open frame.
pub fn frame_health(health: &str, rung: &str) {
    with_draft(|d| {
        d.health = Some(health.to_string());
        d.rung = Some(rung.to_string());
    });
}

/// Appends one per-cluster classification verdict.
pub fn frame_verdict(points: usize, label: &str, confidence: f64) {
    with_draft(|d| {
        d.clusters_classified += 1;
        d.verdicts.push(ClusterVerdict {
            points,
            label: label.to_string(),
            confidence,
        });
    });
}

/// Accumulated milliseconds recorded for `stage` in the open frame
/// so far (0 when absent or no frame is open). Lets an outer stage
/// subtract the time of inner stages it wraps, so per-stage columns
/// never double-count.
pub fn frame_stage_total(stage: &str) -> f64 {
    DRAFT.with(|d| {
        d.borrow().as_ref().map_or(0.0, |draft| {
            draft
                .stages_ms
                .iter()
                .find(|(name, _)| name == stage)
                .map_or(0.0, |(_, ms)| *ms)
        })
    })
}

/// Adds `ms` to `stage`'s accumulated time in the open frame.
pub fn frame_stage_ms(stage: &str, ms: f64) {
    with_draft(|d| {
        if let Some(entry) = d.stages_ms.iter_mut().find(|(name, _)| name == stage) {
            entry.1 += ms;
        } else {
            d.stages_ms.push((stage.to_string(), ms));
        }
    });
}

/// Closes the frame with its final `count`. When telemetry is enabled
/// the record goes to the journal; either way the stage timings are
/// returned so the caller can populate its result struct. Returns
/// `None` if no frame was open.
pub fn frame_finish(count: usize) -> Option<FrameStats> {
    let record = DRAFT.with(|d| d.borrow_mut().take())?;
    let mut record = record;
    record.count = count;
    let stats = FrameStats {
        stages_ms: record.stages_ms.clone(),
    };
    if crate::enabled() {
        crate::incr("frames", 1);
        crate::journal_push(record);
    }
    Some(stats)
}

/// Discards an open frame without journalling it.
pub fn frame_abort() {
    DRAFT.with(|d| *d.borrow_mut() = None);
}

/// Runs `f`, returning its result and the elapsed wall-clock in ms.
pub fn timed_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// Runs `f` as a named stage: timed when a frame is open or telemetry
/// is enabled (stage time goes to the frame draft and, when enabled, to
/// the `name` histogram); a plain call otherwise.
pub fn stage<R>(name: &str, f: impl FnOnce() -> R) -> R {
    if !crate::enabled() && !frame_active() {
        return f();
    }
    let (r, ms) = timed_ms(f);
    frame_stage_ms(name, ms);
    if crate::enabled() {
        crate::observe_ms(name, ms);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_collects_provenance_and_stats() {
        frame_start("test");
        frame_seed(7);
        frame_points_in(120);
        frame_eps(0.3, Some(14));
        frame_clusters(3);
        frame_skipped(1);
        frame_verdict(40, "Human", 0.9);
        frame_verdict(35, "Object", 0.7);
        frame_stage_ms("clustering", 2.0);
        frame_stage_ms("clustering", 1.5);
        frame_stage_ms("classification", 4.0);
        let stats = frame_finish(1).expect("frame was open");
        assert_eq!(stats.stage_ms("clustering"), 3.5);
        assert_eq!(stats.stage_ms("classification"), 4.0);
        assert_eq!(stats.stage_ms("missing"), 0.0);
        assert!(!frame_active());
    }

    #[test]
    fn finish_without_frame_is_none() {
        frame_abort();
        assert!(frame_finish(0).is_none());
    }

    #[test]
    fn stage_times_only_with_open_frame() {
        frame_abort();
        // No frame, telemetry off on this thread's view: plain call.
        let v = stage("idle", || 5);
        assert_eq!(v, 5);

        frame_start("test");
        let v = stage("busy", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            6
        });
        assert_eq!(v, 6);
        let stats = frame_finish(0).unwrap();
        assert!(stats.stage_ms("busy") > 0.0, "stage not timed");
        assert_eq!(stats.stage_ms("idle"), 0.0);
    }

    #[test]
    fn timed_ms_measures_and_passes_through() {
        let (v, ms) = timed_ms(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            "ok"
        });
        assert_eq!(v, "ok");
        assert!(ms >= 1.0);
    }
}
