//! Injected time for everything that must reason about staleness.
//!
//! Two subsystems care about "how long ago": the counting supervisor's
//! hold-last-good window and the fleet tier's heartbeat liveness. Both
//! must agree on what a millisecond is, and both must be testable
//! without sleeping — so they share one [`Clock`] trait instead of
//! reading `Instant::now()` directly. Production code injects
//! [`SystemClock`]; tests inject a [`ManualClock`] and advance it
//! explicitly, making every staleness decision deterministic.
//!
//! Clocks are **monotonic and relative**: [`Clock::now`] is the time
//! since the clock's own epoch, not a wall-clock date. Durations from
//! the same clock are comparable; durations from different clocks are
//! not (a pole's report timestamps are meaningful only to that pole,
//! which is why the aggregator stamps arrivals with *its* clock).

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A monotonic time source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// [`Clock::now`] in milliseconds (convenience for budgets,
    /// timestamps, and gauges that are specified in ms).
    fn now_ms(&self) -> f64 {
        self.now().as_secs_f64() * 1e3
    }
}

/// The real monotonic clock: epoch is the first time any
/// `SystemClock` is read in this process, so timestamps stay small and
/// every `SystemClock` instance agrees.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl SystemClock {
    /// A shareable handle to the system clock.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(SystemClock)
    }
}

fn process_epoch() -> Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        process_epoch().elapsed()
    }
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// [`ManualClock::advance`] (or [`ManualClock::set`]) is called.
/// Cloning shares the underlying time, so a supervisor, an agent, and
/// an aggregator can all be driven off one instance.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<Mutex<Duration>>,
}

impl ManualClock {
    /// A clock starting at its epoch (zero elapsed).
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock starting `ms` milliseconds past its epoch.
    pub fn starting_at_ms(ms: u64) -> Self {
        let clock = ManualClock::new();
        clock.set(Duration::from_millis(ms));
        clock
    }

    /// Moves time forward by `delta`.
    pub fn advance(&self, delta: Duration) {
        *self.now.lock() += delta;
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance(Duration::from_millis(ms));
    }

    /// Jumps to an absolute offset from the epoch. Panics if time
    /// would move backwards — consumers assume monotonicity.
    pub fn set(&self, to: Duration) {
        let mut now = self.now.lock();
        assert!(to >= *now, "ManualClock must not move backwards");
        *now = to;
    }

    /// A shareable trait-object handle to this clock (time stays
    /// shared with `self`).
    pub fn handle(&self) -> Arc<dyn Clock> {
        Arc::new(self.clone())
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_shared() {
        let a = SystemClock;
        let b = SystemClock;
        let t0 = a.now();
        let t1 = b.now();
        assert!(t1 >= t0, "instances share one epoch");
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance_ms(250);
        assert_eq!(clock.now_ms(), 250.0);
        let shared = clock.clone();
        shared.advance(Duration::from_millis(750));
        assert_eq!(clock.now(), Duration::from_secs(1), "clones share time");
    }

    #[test]
    #[should_panic(expected = "move backwards")]
    fn manual_clock_rejects_rewind() {
        let clock = ManualClock::starting_at_ms(100);
        clock.set(Duration::from_millis(50));
    }

    #[test]
    fn handle_is_usable_as_trait_object() {
        let clock = ManualClock::new();
        let handle = clock.handle();
        clock.advance_ms(5);
        assert_eq!(handle.now_ms(), 5.0);
    }
}
