//! Serialising snapshots and journals for `results/`.
//!
//! Two formats, matching how the artefacts are consumed:
//!
//! * **JSON lines** — one object per line, grep- and jq-friendly,
//!   stable field order. Written by hand: the workspace's offline
//!   `serde` stand-in provides no serialisers, and the subset needed
//!   here (strings, numbers, arrays) is small.
//! * **text table** — the human-readable run summary the workbench
//!   prints and drops next to the JSONL.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::journal::FrameRecord;
use crate::{HistogramSnapshot, Snapshot};

/// Escapes `s` for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as JSON: finite values round-trip, NaN/∞ become
/// `null` (JSON has no encoding for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

fn json_opt_str(v: Option<&str>) -> String {
    v.map_or_else(|| "null".to_string(), |s| format!("\"{}\"", json_escape(s)))
}

/// One JSON line per instrument: counters, then gauges, then
/// histograms, each sorted by name (inherited from [`Snapshot`]).
pub fn snapshot_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            r#"{{"type":"counter","name":"{}","value":{value}}}"#,
            json_escape(name)
        );
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(
            out,
            r#"{{"type":"gauge","name":"{}","value":{}}}"#,
            json_escape(name),
            json_f64(*value)
        );
    }
    for h in &snap.histograms {
        let _ = writeln!(
            out,
            concat!(
                r#"{{"type":"histogram","name":"{}","count":{},"mean_ms":{},"#,
                r#""p50_ms":{},"p95_ms":{},"p99_ms":{},"min_ms":{},"max_ms":{},"sum_ms":{}}}"#
            ),
            json_escape(&h.name),
            h.count,
            json_f64(h.mean_ms),
            json_f64(h.p50_ms),
            json_f64(h.p95_ms),
            json_f64(h.p99_ms),
            json_f64(h.min_ms),
            json_f64(h.max_ms),
            json_f64(h.sum_ms),
        );
    }
    out
}

/// One JSON line for a whole [`TelemetrySnapshot`]: counters and
/// gauges inline, histograms summarised (the full cells travel on the
/// wire, not in dashboards).
pub fn telemetry_jsonl(t: &crate::TelemetrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in t.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", json_escape(name));
    }
    out.push_str("},\"gauges\":{");
    let mut first = true;
    for (name, v) in &t.gauges {
        if v.is_nan() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", json_escape(name), json_f64(*v));
    }
    out.push_str("},\"histograms\":[");
    for (i, h) in t.histogram_summaries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                r#"{{"name":"{}","count":{},"mean_ms":{},"#,
                r#""p50_ms":{},"p95_ms":{},"p99_ms":{},"min_ms":{},"max_ms":{}}}"#
            ),
            json_escape(&h.name),
            h.count,
            json_f64(h.mean_ms),
            json_f64(h.p50_ms),
            json_f64(h.p95_ms),
            json_f64(h.p99_ms),
            json_f64(h.min_ms),
            json_f64(h.max_ms),
        );
    }
    out.push_str("]}");
    out
}

/// One JSON line per frame record, oldest first.
pub fn journal_jsonl<'a>(entries: impl IntoIterator<Item = &'a FrameRecord>) -> String {
    let mut out = String::new();
    for r in entries {
        let verdicts: Vec<String> = r
            .verdicts
            .iter()
            .map(|v| {
                format!(
                    r#"{{"points":{},"label":"{}","confidence":{}}}"#,
                    v.points,
                    json_escape(&v.label),
                    json_f64(v.confidence)
                )
            })
            .collect();
        let stages: Vec<String> = r
            .stages_ms
            .iter()
            .map(|(name, ms)| format!(r#""{}":{}"#, json_escape(name), json_f64(*ms)))
            .collect();
        let _ = writeln!(
            out,
            concat!(
                r#"{{"seq":{},"source":"{}","seed":{},"points_in":{},"#,
                r#""eps":{},"knee_index":{},"clusters_found":{},"clusters_classified":{},"#,
                r#""clusters_skipped":{},"count":{},"health":{},"rung":{},"#,
                r#""verdicts":[{}],"stages_ms":{{{}}}}}"#
            ),
            r.seq,
            json_escape(&r.source),
            json_opt_u64(r.seed),
            r.points_in,
            r.eps.map_or_else(|| "null".to_string(), json_f64),
            json_opt_u64(r.knee_index.map(|i| i as u64)),
            r.clusters_found,
            r.clusters_classified,
            r.clusters_skipped,
            r.count,
            json_opt_str(r.health.as_deref()),
            json_opt_str(r.rung.as_deref()),
            verdicts.join(","),
            stages.join(","),
        );
    }
    out
}

fn histogram_row(h: &HistogramSnapshot) -> String {
    format!(
        "{:<28} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        h.name, h.count, h.mean_ms, h.p50_ms, h.p95_ms, h.p99_ms, h.max_ms
    )
}

/// Renders the snapshot as an aligned text table.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "stage", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"
        );
        for h in &snap.histograms {
            let _ = writeln!(out, "{}", histogram_row(h));
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\n{:<36} {:>12}", "counter", "total");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "{name:<36} {value:>12}");
        }
    }
    let shown: Vec<&(String, f64)> = snap.gauges.iter().filter(|(_, v)| !v.is_nan()).collect();
    if !shown.is_empty() {
        let _ = writeln!(out, "\n{:<36} {:>12}", "gauge", "value");
        for (name, value) in shown {
            let _ = writeln!(out, "{name:<36} {value:>12.3}");
        }
    }
    out
}

/// Paths produced by [`write_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArtifacts {
    /// Metrics snapshot, JSON lines.
    pub metrics_jsonl: PathBuf,
    /// Journal, JSON lines.
    pub journal_jsonl: PathBuf,
    /// Human-readable metrics table.
    pub metrics_table: PathBuf,
}

/// Writes the *current global* snapshot and journal into `dir` as
/// `<tag>_metrics.jsonl`, `<tag>_journal.jsonl` and `<tag>_metrics.txt`.
/// Creates `dir` if needed.
pub fn write_run(dir: impl AsRef<Path>, tag: &str) -> io::Result<RunArtifacts> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let snap = crate::snapshot();
    let journal = crate::journal_snapshot();
    let artifacts = RunArtifacts {
        metrics_jsonl: dir.join(format!("{tag}_metrics.jsonl")),
        journal_jsonl: dir.join(format!("{tag}_journal.jsonl")),
        metrics_table: dir.join(format!("{tag}_metrics.txt")),
    };
    std::fs::write(&artifacts.metrics_jsonl, snapshot_jsonl(&snap))?;
    std::fs::write(&artifacts.journal_jsonl, journal_jsonl(journal.iter()))?;
    std::fs::write(&artifacts.metrics_table, render_table(&snap))?;
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::ClusterVerdict;

    fn sample_snapshot() -> Snapshot {
        let h = crate::Histogram::default();
        h.observe(2.0);
        h.observe(4.0);
        Snapshot {
            counters: vec![("beams".to_string(), 42)],
            gauges: vec![
                ("pole_c".to_string(), 41.25),
                ("unset".to_string(), f64::NAN),
            ],
            histograms: vec![h.snapshot("clustering")],
        }
    }

    #[test]
    fn snapshot_jsonl_is_one_valid_object_per_line() {
        let text = snapshot_jsonl(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
        }
        assert!(lines[0].contains(r#""type":"counter""#));
        assert!(lines[0].contains(r#""value":42"#));
        // NaN gauges must serialise as null, not as invalid JSON.
        assert!(lines[2].contains(r#""value":null"#));
        assert!(lines[3].contains(r#""count":2"#));
    }

    #[test]
    fn telemetry_jsonl_is_one_balanced_object() {
        let reg = crate::Registry::new();
        reg.incr("c", 3);
        reg.set_gauge("g", 1.5);
        reg.set_gauge("unset", f64::NAN);
        reg.observe_ms("h", 2.0);
        let line = telemetry_jsonl(&reg.telemetry());
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains(r#""c":3"#));
        assert!(line.contains(r#""g":1.5"#));
        assert!(!line.contains("unset"), "NaN gauges are omitted");
        assert!(line.contains(r#""count":1"#));
    }

    #[test]
    fn journal_jsonl_round_trips_fields_textually() {
        let rec = FrameRecord {
            seq: 9,
            source: "live \"walkway\"".to_string(),
            seed: Some(99),
            points_in: 150,
            eps: Some(0.21),
            knee_index: Some(17),
            clusters_found: 3,
            clusters_classified: 2,
            clusters_skipped: 1,
            verdicts: vec![ClusterVerdict {
                points: 80,
                label: "Human".to_string(),
                confidence: 0.93,
            }],
            count: 1,
            stages_ms: vec![("clustering".to_string(), 2.5)],
            health: Some("degraded".to_string()),
            rung: Some("cached/int8".to_string()),
        };
        let text = journal_jsonl([&rec]);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains(r#""seq":9"#));
        assert!(text.contains(r#""source":"live \"walkway\"""#));
        assert!(text.contains(r#""eps":0.21"#));
        assert!(text.contains(r#""knee_index":17"#));
        assert!(text.contains(r#""health":"degraded""#));
        assert!(text.contains(r#""rung":"cached/int8""#));
        assert!(text.contains(r#""verdicts":[{"points":80,"label":"Human","confidence":0.93}]"#));
        assert!(text.contains(r#""stages_ms":{"clustering":2.5}"#));
    }

    #[test]
    fn table_renders_all_sections_and_hides_unset_gauges() {
        let table = render_table(&sample_snapshot());
        assert!(table.contains("clustering"));
        assert!(table.contains("beams"));
        assert!(table.contains("pole_c"));
        assert!(!table.contains("unset"));
        assert!(table.contains("p95 ms"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
