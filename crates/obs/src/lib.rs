//! Pole-side telemetry for the HAWC-CC pipeline.
//!
//! Three pieces, one global registry:
//!
//! * **metrics** — counters, gauges and log-bucketed latency histograms
//!   with p50/p95/p99/max snapshots ([`snapshot`]);
//! * **spans** — scoped per-stage wall-clock timing ([`stage`],
//!   [`timed_ms`]) feeding both the histograms and the per-frame
//!   provenance draft;
//! * **journal** — a bounded ring of [`FrameRecord`]s answering "why
//!   did frame N count 3 people?" ([`journal_snapshot`]).
//!
//! Everything is off by default: until [`enable`] is called the only
//! cost on the hot path is one relaxed atomic load (plus one
//! thread-local check inside [`stage`]). Frame drafts still run inside
//! `CrowdCounter::count` so its latency fields stay populated, but
//! nothing is retained. Telemetry never feeds back into computation, so
//! pipeline outputs are bit-identical with telemetry on or off — the
//! root determinism test pins that.
//!
//! The registry is process-global on purpose: a pole runs one pipeline,
//! and threading a context handle through every crate would put an
//! observability concern in every signature.

#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod journal;
pub mod metrics;
mod span;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

pub use clock::{Clock, ManualClock, SystemClock};
pub use journal::{ClusterVerdict, FrameRecord, Journal, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use span::{
    frame_abort, frame_active, frame_clusters, frame_eps, frame_finish, frame_health,
    frame_points_in, frame_seed, frame_skipped, frame_stage_ms, frame_stage_total, frame_start,
    frame_verdict, stage, timed_ms, FrameStats,
};

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    journal: Mutex<Journal>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(BTreeMap::new()),
        gauges: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
        journal: Mutex::new(Journal::default()),
    })
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(existing) = map.read().get(name) {
        return Arc::clone(existing);
    }
    Arc::clone(map.write().entry(name.to_string()).or_default())
}

/// Turns telemetry collection on or off globally.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The counter registered under `name`, creating it on first use.
pub fn counter(name: &str) -> Arc<Counter> {
    get_or_create(&registry().counters, name)
}

/// Adds `n` to counter `name` — a no-op while telemetry is off.
pub fn incr(name: &str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// The gauge registered under `name`, creating it on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    get_or_create(&registry().gauges, name)
}

/// Sets gauge `name` to `v` — a no-op while telemetry is off.
pub fn set_gauge(name: &str, v: f64) {
    if enabled() {
        gauge(name).set(v);
    }
}

/// The histogram registered under `name`, creating it on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    get_or_create(&registry().histograms, name)
}

/// Observes `ms` into histogram `name` — a no-op while telemetry is
/// off.
pub fn observe_ms(name: &str, ms: f64) {
    if enabled() {
        histogram(name).observe(ms);
    }
}

/// Point-in-time view of every registered instrument.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshots all registered metrics.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        counters: reg
            .counters
            .read()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .read()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .read()
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect(),
    }
}

/// Appends a frame record to the journal, returning its sequence
/// number. Most callers go through [`frame_finish`] instead.
pub fn journal_push(record: FrameRecord) -> u64 {
    registry().journal.lock().push(record)
}

/// Clones the retained journal records, oldest first.
pub fn journal_snapshot() -> Vec<FrameRecord> {
    registry().journal.lock().entries().cloned().collect()
}

/// Total frames ever journalled (including evicted ones).
pub fn journal_total() -> u64 {
    registry().journal.lock().total_recorded()
}

/// Resizes the journal ring.
pub fn set_journal_capacity(capacity: usize) {
    registry().journal.lock().set_capacity(capacity);
}

/// Clears every metric and the journal; instruments stay registered.
/// Meant for test isolation and between-run resets.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.read().values() {
        c.reset();
    }
    for g in reg.gauges.read().values() {
        g.set(f64::NAN);
    }
    for h in reg.histograms.read().values() {
        h.reset();
    }
    reg.journal.lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_same_instrument_per_name() {
        let a = counter("test.lib.same");
        let b = counter("test.lib.same");
        a.add(2);
        b.add(3);
        assert_eq!(counter("test.lib.same").get(), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        counter("test.lib.z").add(1);
        counter("test.lib.a").add(1);
        gauge("test.lib.g").set(2.5);
        histogram("test.lib.h").observe(1.0);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(snap
            .gauges
            .iter()
            .any(|(n, v)| n == "test.lib.g" && *v == 2.5));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "test.lib.h" && h.count >= 1));
    }

    #[test]
    fn gated_helpers_are_inert_while_disabled() {
        // Global state: this test must not run concurrently with one
        // that enables telemetry, so it uses names nothing else uses
        // and only asserts on those.
        assert!(!enabled());
        incr("test.lib.gated", 5);
        set_gauge("test.lib.gated_g", 1.0);
        observe_ms("test.lib.gated_h", 1.0);
        assert_eq!(counter("test.lib.gated").get(), 0);
        assert!(gauge("test.lib.gated_g").get().is_nan());
        assert_eq!(histogram("test.lib.gated_h").count(), 0);
    }
}
