//! Pole-side telemetry for the HAWC-CC pipeline.
//!
//! Three pieces, one global registry:
//!
//! * **metrics** — counters, gauges and log-bucketed latency histograms
//!   with p50/p95/p99/max snapshots ([`snapshot`]);
//! * **spans** — scoped per-stage wall-clock timing ([`stage`],
//!   [`timed_ms`]) feeding both the histograms and the per-frame
//!   provenance draft;
//! * **journal** — a bounded ring of [`FrameRecord`]s answering "why
//!   did frame N count 3 people?" ([`journal_snapshot`]).
//!
//! Everything is off by default: until [`enable`] is called the only
//! cost on the hot path is one relaxed atomic load (plus one
//! thread-local check inside [`stage`]). Frame drafts still run inside
//! `CrowdCounter::count` so its latency fields stay populated, but
//! nothing is retained. Telemetry never feeds back into computation, so
//! pipeline outputs are bit-identical with telemetry on or off — the
//! root determinism test pins that.
//!
//! The *default* registry is process-global on purpose: a pole runs
//! one pipeline, and threading a context handle through every crate
//! would put an observability concern in every signature. Components
//! that need isolated series — a fleet agent emitting per-pole
//! telemetry, a bench that must not leak state across cells — own a
//! [`Registry`] of their own and dump it as a portable
//! [`TelemetrySnapshot`] (see [`telemetry`]).

#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod journal;
pub mod metrics;
mod span;
pub mod telemetry;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

pub use clock::{Clock, ManualClock, SystemClock};
pub use journal::{ClusterVerdict, FrameRecord, Journal, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use span::{
    frame_abort, frame_active, frame_clusters, frame_eps, frame_finish, frame_health,
    frame_points_in, frame_seed, frame_skipped, frame_stage_ms, frame_stage_total, frame_start,
    frame_verdict, stage, timed_ms, FrameStats,
};
pub use telemetry::{HistogramCells, TelemetrySnapshot};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// An isolated metrics registry: counters, gauges, histograms, and a
/// frame journal under one namespace.
///
/// The process-global registry (reached through the free functions
/// [`counter`], [`incr`], [`snapshot`], …) is one instance of this
/// type. Owning a scoped `Registry` gives a component series that no
/// other code can touch — a pole agent's per-pole telemetry, a bench
/// cell's private stats. Scoped instrument helpers are **not** gated
/// on [`enabled`]: whoever constructed the registry asked for the
/// data, while the global free functions stay off-by-default.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    journal: Mutex<Journal>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Adds `n` to counter `name`.
    pub fn incr(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// The histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Observes `ms` into histogram `name`.
    pub fn observe_ms(&self, name: &str, ms: f64) {
        self.histogram(name).observe(ms);
    }

    /// Summarised point-in-time view (rendering format).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(name, h)| h.snapshot(name))
                .collect(),
        }
    }

    /// Portable, mergeable dump of every instrument (transport
    /// format) — counters as totals, gauges, full histogram cells.
    /// Never-set gauges (still `NaN`) are omitted: a pre-registered
    /// handle nobody wrote to carries no information, and `NaN` would
    /// poison bitwise snapshot comparison downstream.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .filter_map(|(name, g)| {
                    let v = g.get();
                    (!v.is_nan()).then(|| (name.clone(), v))
                })
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(name, h)| h.cells(name))
                .collect(),
        }
    }

    /// Clears every metric and the journal; instruments stay
    /// registered.
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        for g in self.gauges.read().values() {
            g.set(f64::NAN);
        }
        for h in self.histograms.read().values() {
            h.reset();
        }
        self.journal.lock().clear();
    }
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(existing) = map.read().get(name) {
        return Arc::clone(existing);
    }
    Arc::clone(map.write().entry(name.to_string()).or_default())
}

/// Turns telemetry collection on or off globally.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The global counter registered under `name`, creating it on first
/// use.
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Adds `n` to counter `name` — a no-op while telemetry is off.
pub fn incr(name: &str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// The global gauge registered under `name`, creating it on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Sets gauge `name` to `v` — a no-op while telemetry is off.
pub fn set_gauge(name: &str, v: f64) {
    if enabled() {
        gauge(name).set(v);
    }
}

/// The global histogram registered under `name`, creating it on first
/// use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

/// Observes `ms` into histogram `name` — a no-op while telemetry is
/// off.
pub fn observe_ms(name: &str, ms: f64) {
    if enabled() {
        histogram(name).observe(ms);
    }
}

/// Point-in-time view of every registered instrument.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Snapshots all globally registered metrics.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// Portable, mergeable dump of the global registry. Benches take one
/// before a cell and [`TelemetrySnapshot::delta_since`] after it for
/// honest per-cell stats without resetting shared state.
pub fn telemetry_snapshot() -> TelemetrySnapshot {
    registry().telemetry()
}

/// Appends a frame record to the journal, returning its sequence
/// number. Most callers go through [`frame_finish`] instead.
pub fn journal_push(record: FrameRecord) -> u64 {
    registry().journal.lock().push(record)
}

/// Clones the retained journal records, oldest first.
pub fn journal_snapshot() -> Vec<FrameRecord> {
    registry().journal.lock().entries().cloned().collect()
}

/// Total frames ever journalled (including evicted ones).
pub fn journal_total() -> u64 {
    registry().journal.lock().total_recorded()
}

/// Resizes the journal ring.
pub fn set_journal_capacity(capacity: usize) {
    registry().journal.lock().set_capacity(capacity);
}

/// Clears every global metric and the journal; instruments stay
/// registered. Meant for test isolation and between-run resets —
/// long-lived processes should prefer [`telemetry_snapshot`] deltas,
/// which don't destroy other readers' baselines.
pub fn reset() {
    registry().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_same_instrument_per_name() {
        let a = counter("test.lib.same");
        let b = counter("test.lib.same");
        a.add(2);
        b.add(3);
        assert_eq!(counter("test.lib.same").get(), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        counter("test.lib.z").add(1);
        counter("test.lib.a").add(1);
        gauge("test.lib.g").set(2.5);
        histogram("test.lib.h").observe(1.0);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert!(snap
            .gauges
            .iter()
            .any(|(n, v)| n == "test.lib.g" && *v == 2.5));
        assert!(snap
            .histograms
            .iter()
            .any(|h| h.name == "test.lib.h" && h.count >= 1));
    }

    #[test]
    fn scoped_registries_are_isolated_from_the_global_one() {
        let scoped = Registry::new();
        scoped.incr("test.scoped.c", 7);
        scoped.set_gauge("test.scoped.g", 3.0);
        scoped.observe_ms("test.scoped.h", 2.0);
        // Scoped writes are ungated and land only in the scoped
        // registry.
        assert_eq!(scoped.counter("test.scoped.c").get(), 7);
        assert_eq!(counter("test.scoped.c").get(), 0);
        assert!(gauge("test.scoped.g").get().is_nan());
        assert_eq!(histogram("test.scoped.h").count(), 0);
        // And the scoped dump carries everything.
        let t = scoped.telemetry();
        assert_eq!(t.counter("test.scoped.c"), 7);
        assert_eq!(t.gauge("test.scoped.g"), Some(3.0));
        assert_eq!(t.histogram("test.scoped.h").unwrap().count, 1);
    }

    #[test]
    fn telemetry_delta_since_tracks_a_window() {
        let scoped = Registry::new();
        scoped.incr("test.delta.c", 2);
        scoped.observe_ms("test.delta.h", 1.0);
        let base = scoped.telemetry();
        scoped.incr("test.delta.c", 5);
        scoped.observe_ms("test.delta.h", 4.0);
        let delta = scoped.telemetry().delta_since(&base);
        assert_eq!(delta.counter("test.delta.c"), 5);
        assert_eq!(delta.histogram("test.delta.h").unwrap().count, 1);
    }

    #[test]
    fn gated_helpers_are_inert_while_disabled() {
        // Global state: this test must not run concurrently with one
        // that enables telemetry, so it uses names nothing else uses
        // and only asserts on those.
        assert!(!enabled());
        incr("test.lib.gated", 5);
        set_gauge("test.lib.gated_g", 1.0);
        observe_ms("test.lib.gated_h", 1.0);
        assert_eq!(counter("test.lib.gated").get(), 0);
        assert!(gauge("test.lib.gated_g").get().is_nan());
        assert_eq!(histogram("test.lib.gated_h").count(), 0);
    }
}
