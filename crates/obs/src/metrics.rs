//! Counters, gauges and log-bucketed latency histograms.
//!
//! All instruments are lock-free on the hot path: counters and gauges
//! are single atomics, histograms are a fixed array of atomic buckets
//! plus atomically-merged min/max/sum. Snapshots are taken with plain
//! relaxed loads — they are monitoring data, not synchronisation.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` stored in an `AtomicU64` via its bit pattern.
#[derive(Debug, Default)]
pub(crate) struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    pub(crate) fn new(v: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    pub(crate) fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    fn update(&self, f: impl Fn(f64) -> f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub(crate) fn add(&self, v: f64) {
        self.update(|cur| cur + v);
    }

    pub(crate) fn max_merge(&self, v: f64) {
        self.update(|cur| cur.max(v));
    }

    pub(crate) fn min_merge(&self, v: f64) {
        self.update(|cur| cur.min(v));
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins measurement (temperature, queue depth, …).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicF64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            value: AtomicF64::new(f64::NAN),
        }
    }
}

impl Gauge {
    /// Records the latest value.
    pub fn set(&self, v: f64) {
        self.value.store(v);
    }

    /// Latest recorded value, `NaN` until first set.
    pub fn get(&self) -> f64 {
        self.value.load()
    }
}

/// Number of histogram buckets: geometric, √2 apart, so two buckets per
/// octave. Bucket 0 tops out at [`BUCKET_LO_MS`]·√2; the range covers
/// one microsecond to roughly 70 minutes, wide enough for anything a
/// pole-side pipeline can produce.
pub(crate) const BUCKETS: usize = 64;
/// Lower edge (ms) of the histogram range.
const BUCKET_LO_MS: f64 = 1e-3;

/// A latency histogram over millisecond observations.
///
/// Buckets are geometric (√2 ratio), so relative error of a quantile
/// estimate is bounded by ~41% of one bucket width; exact min and max
/// are tracked separately and quantiles are clamped into `[min, max]`,
/// which also makes the single-observation case exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ms: AtomicF64,
    min_ms: AtomicF64,
    max_ms: AtomicF64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ms: AtomicF64::new(0.0),
            min_ms: AtomicF64::new(f64::INFINITY),
            max_ms: AtomicF64::new(f64::NEG_INFINITY),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registry name of the series.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, ms.
    pub sum_ms: f64,
    /// Arithmetic mean, ms (0 when empty).
    pub mean_ms: f64,
    /// Median estimate, ms.
    pub p50_ms: f64,
    /// 95th-percentile estimate, ms.
    pub p95_ms: f64,
    /// 99th-percentile estimate, ms.
    pub p99_ms: f64,
    /// Exact smallest observation, ms (0 when empty).
    pub min_ms: f64,
    /// Exact largest observation, ms (0 when empty).
    pub max_ms: f64,
}

fn bucket_index(ms: f64) -> usize {
    if ms.is_nan() || ms <= BUCKET_LO_MS {
        return 0;
    }
    // Two buckets per octave.
    let idx = ((ms / BUCKET_LO_MS).log2() * 2.0).floor() as usize;
    idx.min(BUCKETS - 1)
}

pub(crate) fn bucket_upper_ms(idx: usize) -> f64 {
    BUCKET_LO_MS * 2f64.powf((idx + 1) as f64 / 2.0)
}

/// Lower edge of bucket `idx` (0 for the catch-all first bucket).
pub(crate) fn bucket_lower_ms(idx: usize) -> f64 {
    if idx == 0 {
        0.0
    } else {
        BUCKET_LO_MS * 2f64.powf(idx as f64 / 2.0)
    }
}

impl Histogram {
    /// Records one observation of `ms` milliseconds. Negative or NaN
    /// values are clamped to zero (they can only come from clock
    /// weirdness, and must not poison min/max).
    pub fn observe(&self, ms: f64) {
        let ms = if ms.is_finite() && ms > 0.0 { ms } else { 0.0 };
        self.buckets[bucket_index(ms)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ms.add(ms);
        self.min_ms.min_merge(ms);
        self.max_ms.max_merge(ms);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Quantile estimate for `q` in `[0, 1]`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let est = bucket_upper_ms(i);
                return Some(est.clamp(self.min_ms.load(), self.max_ms.load()));
            }
        }
        Some(self.max_ms.load())
    }

    /// Summarises the current state under `name`.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum_ms.load();
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum_ms: sum,
            mean_ms: if count == 0 { 0.0 } else { sum / count as f64 },
            p50_ms: self.quantile(0.50).unwrap_or(0.0),
            p95_ms: self.quantile(0.95).unwrap_or(0.0),
            p99_ms: self.quantile(0.99).unwrap_or(0.0),
            min_ms: if count == 0 { 0.0 } else { self.min_ms.load() },
            max_ms: if count == 0 { 0.0 } else { self.max_ms.load() },
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ms.store(0.0);
        self.min_ms.store(f64::INFINITY);
        self.max_ms.store(f64::NEG_INFINITY);
    }

    pub(crate) fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx].load(Ordering::Relaxed)
    }

    pub(crate) fn sum_ms_total(&self) -> f64 {
        self.sum_ms.load()
    }

    pub(crate) fn min_ms_raw(&self) -> f64 {
        self.min_ms.load()
    }

    pub(crate) fn max_ms_raw(&self) -> f64 {
        self.max_ms.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let g = Gauge::default();
        assert!(g.get().is_nan());
        g.set(42.5);
        g.set(17.0);
        assert_eq!(g.get(), 17.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_none_and_snapshot_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        let s = h.snapshot("t");
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ms, 0.0);
        assert_eq!(s.p99_ms, 0.0);
        assert_eq!(s.min_ms, 0.0);
        assert_eq!(s.max_ms, 0.0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn one_sample_quantiles_are_exact() {
        let h = Histogram::default();
        h.observe(3.7);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3.7), "q={q}");
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 1);
        assert_eq!(s.min_ms, 3.7);
        assert_eq!(s.max_ms, 3.7);
        assert_eq!(s.mean_ms, 3.7);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::default();
        // 100 observations: 1..=100 ms.
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // √2 buckets bound the relative error by one bucket ratio.
        assert!((35.0..=75.0).contains(&p50), "p50 {p50}");
        assert!((67.0..=100.0).contains(&p95), "p95 {p95}");
        assert!(p99 >= p95 && p99 <= 100.0, "p99 {p99}");
        assert_eq!(h.snapshot("t").max_ms, 100.0);
        assert_eq!(h.snapshot("t").min_ms, 1.0);
    }

    #[test]
    fn extreme_values_stay_in_range() {
        let h = Histogram::default();
        h.observe(0.0); // below the lowest bucket edge
        h.observe(1e9); // far above the top bucket
        h.observe(f64::NAN); // clamped to zero
        h.observe(-5.0); // clamped to zero
        assert_eq!(h.count(), 4);
        let s = h.snapshot("t");
        assert_eq!(s.min_ms, 0.0);
        assert_eq!(s.max_ms, 1e9);
        assert!(h.quantile(1.0).unwrap() <= 1e9);
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut last = 0;
        for ms in [1e-4, 1e-3, 2e-3, 0.1, 1.0, 5.0, 16.0, 100.0, 1e4, 1e9] {
            let idx = bucket_index(ms);
            assert!(idx >= last, "index regressed at {ms}");
            last = idx;
        }
        assert!(last == BUCKETS - 1);
    }
}
