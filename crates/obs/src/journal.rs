//! The run journal: a bounded ring of per-frame provenance records.
//!
//! Each counting frame leaves one [`FrameRecord`] describing *why* the
//! pipeline produced the count it did — the adaptive-ε choice, the knee
//! index it came from, which clusters were kept and how each was
//! classified. The ring is bounded so a pole running for weeks keeps a
//! constant memory footprint; `seq` keeps growing, so dropped history
//! is detectable.

/// Per-cluster classification outcome inside one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterVerdict {
    /// Points in the cluster as handed to the classifier.
    pub points: usize,
    /// Predicted label, e.g. `"Human"` / `"Object"`.
    pub label: String,
    /// Classifier confidence in `[0, 1]`, or `NaN` when the
    /// classifier does not expose one.
    pub confidence: f64,
}

/// Provenance for one counting frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrameRecord {
    /// Monotonic sequence number, assigned by the journal.
    pub seq: u64,
    /// Which harness produced the frame (`"live_walkway"`, …).
    pub source: String,
    /// RNG seed of the run, when the harness has one.
    pub seed: Option<u64>,
    /// Points entering the clustering stage.
    pub points_in: usize,
    /// Adaptive DBSCAN ε for this frame, if adaptive clustering ran.
    pub eps: Option<f64>,
    /// Index into the sorted k-NN distance curve where the knee was
    /// found, if the adaptive ε came from a knee (rather than clamps
    /// or the fallback).
    pub knee_index: Option<usize>,
    /// Clusters produced by the clustering stage.
    pub clusters_found: usize,
    /// Clusters that reached the classifier.
    pub clusters_classified: usize,
    /// Clusters dropped before classification (too few points).
    pub clusters_skipped: usize,
    /// Per-cluster classification outcomes, in classification order.
    pub verdicts: Vec<ClusterVerdict>,
    /// Final pedestrian count reported for the frame.
    pub count: usize,
    /// Stage wall-clock timings `(stage, ms)`, in first-seen order.
    pub stages_ms: Vec<(String, f64)>,
    /// Supervisor health state when a supervised loop produced the
    /// frame (`"healthy"` / `"degraded"` / `"faulted"`), `None` for
    /// unsupervised runs.
    pub health: Option<String>,
    /// Degradation-ladder rung the frame ran on (e.g.
    /// `"adaptive/fp32"`), `None` for unsupervised runs.
    pub rung: Option<String>,
}

/// Bounded ring buffer of [`FrameRecord`]s.
#[derive(Debug)]
pub struct Journal {
    ring: std::collections::VecDeque<FrameRecord>,
    capacity: usize,
    next_seq: u64,
}

/// Default ring capacity — roughly a day of half-hour slots with wide
/// margin, while keeping worst-case memory in the tens of kilobytes.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 256;

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// Creates a journal holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Journal {
            ring: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
        }
    }

    /// Appends `record`, assigning its sequence number; evicts the
    /// oldest record when full. Returns the assigned sequence number.
    pub fn push(&mut self, mut record: FrameRecord) -> u64 {
        let seq = self.next_seq;
        record.seq = seq;
        self.next_seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(record);
        seq
    }

    /// Records currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FrameRecord> {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever pushed (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// Resizes the ring, evicting oldest records if shrinking.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.ring.len() > self.capacity {
            self.ring.pop_front();
        }
    }

    /// Clears retained records and the sequence counter.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(source: &str) -> FrameRecord {
        FrameRecord {
            source: source.to_string(),
            ..FrameRecord::default()
        }
    }

    #[test]
    fn sequences_are_monotonic_from_zero() {
        let mut j = Journal::with_capacity(4);
        assert_eq!(j.push(record("a")), 0);
        assert_eq!(j.push(record("b")), 1);
        assert_eq!(j.entries().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let mut j = Journal::with_capacity(3);
        for i in 0..7 {
            j.push(record(&format!("f{i}")));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.total_recorded(), 7);
        let kept: Vec<(u64, String)> = j.entries().map(|r| (r.seq, r.source.clone())).collect();
        assert_eq!(
            kept,
            vec![
                (4, "f4".to_string()),
                (5, "f5".to_string()),
                (6, "f6".to_string())
            ]
        );
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut j = Journal::with_capacity(8);
        for i in 0..5 {
            j.push(record(&format!("f{i}")));
        }
        j.set_capacity(2);
        assert_eq!(j.entries().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
        // Growing back does not resurrect evicted records.
        j.set_capacity(8);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut j = Journal::with_capacity(0);
        j.push(record("a"));
        j.push(record("b"));
        assert_eq!(j.len(), 1);
        assert_eq!(j.entries().next().unwrap().source, "b");
    }

    #[test]
    fn clear_resets_sequence() {
        let mut j = Journal::default();
        j.push(record("a"));
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.push(record("b")), 0);
    }
}
