//! Portable, mergeable telemetry snapshots.
//!
//! [`crate::Snapshot`] is a rendering format: histogram summaries with
//! pre-computed quantiles that cannot be combined after the fact
//! (quantiles do not add). This module is the *transport* format: a
//! [`TelemetrySnapshot`] carries raw counter totals, gauge values, and
//! the full log-bucket occupancy of every histogram, so two snapshots
//! from different poles — or from the same pole at different times —
//! merge **exactly**:
//!
//! - counters add;
//! - gauges are last-value-wins (the merged-in side wins);
//! - histograms merge bucket-by-bucket, which is bit-identical to
//!   having observed the union of both sample sets in the first place
//!   (bucket counts, total count, min and max are exact; only `sum_ms`
//!   is subject to float-addition ordering).
//!
//! The dual operation is [`TelemetrySnapshot::delta_since`], which
//! subtracts an earlier snapshot of the *same* registry to get the
//! activity of a window — what a pole agent ships on its heartbeat
//! cadence, and what benches use for honest per-cell stats instead of
//! resetting the global registry.

use serde::{Deserialize, Serialize};

use crate::metrics::{bucket_lower_ms, bucket_upper_ms, Histogram, HistogramSnapshot, BUCKETS};

/// The full bucket occupancy of one histogram, sparse and portable.
///
/// Unlike [`HistogramSnapshot`] this is lossless with respect to the
/// underlying buckets, so any number of cells can be merged and the
/// quantiles of the merged distribution computed afterwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramCells {
    /// Registry name of the series.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, ms.
    pub sum_ms: f64,
    /// Exact smallest observation, ms (`INFINITY` when empty).
    pub min_ms: f64,
    /// Exact largest observation, ms (`NEG_INFINITY` when empty).
    pub max_ms: f64,
    /// `(bucket index, occupancy)`, ascending index, zero-occupancy
    /// buckets omitted. Indices address the registry's fixed √2
    /// geometric bucket grid, so cells from any two histograms are
    /// directly comparable.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramCells {
    /// An empty cell set under `name`.
    pub fn empty(name: impl Into<String>) -> Self {
        HistogramCells {
            name: name.into(),
            count: 0,
            sum_ms: 0.0,
            min_ms: f64::INFINITY,
            max_ms: f64::NEG_INFINITY,
            buckets: Vec::new(),
        }
    }

    /// Whether no observations are recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` in. Bucket-exact: the result has the same bucket
    /// occupancy, count, min and max as a histogram that observed both
    /// sample sets directly.
    pub fn merge(&mut self, other: &HistogramCells) {
        self.count += other.count;
        self.sum_ms += other.sum_ms;
        self.min_ms = self.min_ms.min(other.min_ms);
        self.max_ms = self.max_ms.max(other.max_ms);
        let mut merged: Vec<(u8, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// Quantile estimate for `q` in `[0, 1]`; `None` when empty. Same
    /// estimator as [`Histogram::quantile`]: bucket upper edge clamped
    /// into `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                let est = bucket_upper_ms(idx as usize);
                return Some(est.clamp(self.min_ms, self.max_ms));
            }
        }
        Some(self.max_ms)
    }

    /// Summarises into the rendering format.
    pub fn summary(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count,
            sum_ms: self.sum_ms,
            mean_ms: if self.count == 0 {
                0.0
            } else {
                self.sum_ms / self.count as f64
            },
            p50_ms: self.quantile(0.50).unwrap_or(0.0),
            p95_ms: self.quantile(0.95).unwrap_or(0.0),
            p99_ms: self.quantile(0.99).unwrap_or(0.0),
            min_ms: if self.count == 0 { 0.0 } else { self.min_ms },
            max_ms: if self.count == 0 { 0.0 } else { self.max_ms },
        }
    }

    /// The window of activity since `base` (an earlier cell dump of
    /// the same histogram). Bucket counts and totals subtract exactly.
    /// Min/max cannot be un-merged, so the delta's extremes are exact
    /// when `base` was empty and otherwise estimated from the delta's
    /// own occupied bucket range, clamped into the lifetime extremes.
    pub fn delta_since(&self, base: &HistogramCells) -> HistogramCells {
        if base.count == 0 {
            return self.clone();
        }
        let mut buckets: Vec<(u8, u64)> = Vec::new();
        for &(idx, cur) in &self.buckets {
            let prev = base
                .buckets
                .iter()
                .find(|&&(i, _)| i == idx)
                .map_or(0, |&(_, c)| c);
            let d = cur.saturating_sub(prev);
            if d > 0 {
                buckets.push((idx, d));
            }
        }
        let count = self.count.saturating_sub(base.count);
        let (min_ms, max_ms) = if count == 0 {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            let lo = buckets.first().map_or(self.min_ms, |&(i, _)| {
                bucket_lower_ms(i as usize).max(self.min_ms)
            });
            let hi = buckets.last().map_or(self.max_ms, |&(i, _)| {
                bucket_upper_ms(i as usize).min(self.max_ms)
            });
            (lo, hi.max(lo))
        };
        HistogramCells {
            name: self.name.clone(),
            count,
            sum_ms: (self.sum_ms - base.sum_ms).max(0.0),
            min_ms,
            max_ms,
            buckets,
        }
    }
}

impl Histogram {
    /// Dumps the current state as portable cells under `name`.
    pub fn cells(&self, name: &str) -> HistogramCells {
        let count = self.count();
        let mut buckets = Vec::new();
        for idx in 0..BUCKETS {
            let c = self.bucket_count(idx);
            if c > 0 {
                buckets.push((idx as u8, c));
            }
        }
        HistogramCells {
            name: name.to_string(),
            count,
            sum_ms: self.sum_ms_total(),
            min_ms: self.min_ms_raw(),
            max_ms: self.max_ms_raw(),
            buckets,
        }
    }
}

/// A portable, mergeable dump of a whole registry: counter totals,
/// gauge values, and full histogram cells, each sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// `(name, total)` per counter, ascending name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, ascending name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram cells, ascending name.
    pub histograms: Vec<HistogramCells>,
}

impl TelemetrySnapshot {
    /// Whether nothing at all is recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter total under `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Gauge value under `name`, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram cells under `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramCells> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds `other` in: counters add, gauges last-value-wins (the
    /// merged-in side), histograms merge bucket-exactly by name.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, v) in &other.counters {
            match self
                .counters
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
            {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.gauges[i].1 = *v,
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|mine| mine.name.as_str().cmp(&h.name))
            {
                Ok(i) => self.histograms[i].merge(h),
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }

    /// The activity window since `base` (an earlier snapshot of the
    /// same registry): counters subtract (zero deltas dropped), gauges
    /// keep their current values, histograms subtract bucket-exactly
    /// (empty deltas dropped). `merge`ing the delta onto `base`
    /// reproduces the current bucket occupancy exactly.
    pub fn delta_since(&self, base: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(name, v)| {
                let d = v.saturating_sub(base.counter(name));
                (d > 0).then(|| (name.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let d = match base.histogram(&h.name) {
                    Some(b) => h.delta_since(b),
                    None => h.clone(),
                };
                (!d.is_empty()).then_some(d)
            })
            .collect();
        TelemetrySnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Histogram summaries (rendering format), ascending name.
    pub fn histogram_summaries(&self) -> Vec<HistogramSnapshot> {
        self.histograms.iter().map(|h| h.summary()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed(name: &str, samples: &[f64]) -> HistogramCells {
        let h = Histogram::default();
        for &s in samples {
            h.observe(s);
        }
        h.cells(name)
    }

    #[test]
    fn cells_round_trip_the_histogram_state() {
        let h = Histogram::default();
        for ms in [0.5, 2.0, 2.1, 40.0, 1000.0] {
            h.observe(ms);
        }
        let cells = h.cells("t");
        assert_eq!(cells.count, 5);
        assert_eq!(cells.min_ms, 0.5);
        assert_eq!(cells.max_ms, 1000.0);
        assert_eq!(cells.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 5);
        // Same estimator, same inputs: quantiles agree with the live
        // histogram bit-for-bit.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(cells.quantile(q), h.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_equals_observing_the_union() {
        // Integer-valued samples: sums are exact, so even `sum_ms` is
        // bit-identical between the merged and the directly-observed
        // histogram.
        let a_samples: Vec<f64> = (1..=40).map(|i| i as f64).collect();
        let b_samples: Vec<f64> = (25..=90).map(|i| (i * 3) as f64).collect();
        let a = observed("t", &a_samples);
        let b = observed("t", &b_samples);
        let union: Vec<f64> = a_samples.iter().chain(&b_samples).copied().collect();
        let direct = observed("t", &union);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, direct, "merge(a, b) == observing the union");
        // And merge is symmetric on everything but float sums (which
        // are exact here anyway).
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(flipped, direct);
    }

    #[test]
    fn merging_an_empty_cell_set_is_identity() {
        let a = observed("t", &[1.0, 5.0, 9.0]);
        let mut merged = a.clone();
        merged.merge(&HistogramCells::empty("t"));
        assert_eq!(merged, a);
        let mut other = HistogramCells::empty("t");
        other.merge(&a);
        assert_eq!(other, a);
    }

    #[test]
    fn delta_then_merge_reproduces_the_current_state() {
        let h = Histogram::default();
        for ms in [1.0, 4.0, 16.0] {
            h.observe(ms);
        }
        let base = h.cells("t");
        for ms in [2.0, 64.0, 64.0, 256.0] {
            h.observe(ms);
        }
        let cur = h.cells("t");
        let delta = cur.delta_since(&base);
        assert_eq!(delta.count, 4);
        let mut rebuilt = base.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.count, cur.count);
        assert_eq!(rebuilt.buckets, cur.buckets, "buckets rebuild exactly");
    }

    #[test]
    fn delta_extremes_are_exact_from_an_empty_base() {
        let h = Histogram::default();
        let base = h.cells("t");
        h.observe(3.5);
        h.observe(7.0);
        let delta = h.cells("t").delta_since(&base);
        assert_eq!(delta.min_ms, 3.5);
        assert_eq!(delta.max_ms, 7.0);
    }

    #[test]
    fn delta_extremes_stay_bracketed_otherwise() {
        let h = Histogram::default();
        h.observe(1000.0); // lifetime max, outside the window
        let base = h.cells("t");
        h.observe(4.0);
        h.observe(6.0);
        let delta = h.cells("t").delta_since(&base);
        assert_eq!(delta.count, 2);
        // Bucket-resolution estimates: bracket the true window values
        // and never exceed the lifetime extremes.
        assert!(
            delta.min_ms <= 4.0 && delta.min_ms > 0.0,
            "{}",
            delta.min_ms
        );
        assert!(
            delta.max_ms >= 6.0 && delta.max_ms < 1000.0,
            "{}",
            delta.max_ms
        );
    }

    #[test]
    fn snapshot_merge_adds_counters_and_overwrites_gauges() {
        let a = TelemetrySnapshot {
            counters: vec![("x".into(), 3), ("y".into(), 1)],
            gauges: vec![("g".into(), 1.0)],
            histograms: vec![observed("h", &[1.0])],
        };
        let b = TelemetrySnapshot {
            counters: vec![("x".into(), 4), ("z".into(), 9)],
            gauges: vec![("g".into(), 2.5), ("q".into(), 7.0)],
            histograms: vec![observed("h", &[8.0]), observed("h2", &[2.0])],
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.counter("x"), 7);
        assert_eq!(m.counter("y"), 1);
        assert_eq!(m.counter("z"), 9);
        assert_eq!(m.gauge("g"), Some(2.5), "merged-in gauge wins");
        assert_eq!(m.gauge("q"), Some(7.0));
        assert_eq!(m.histogram("h").unwrap().count, 2);
        assert_eq!(m.histogram("h2").unwrap().count, 1);
        let names: Vec<&str> = m.histograms.iter().map(|h| h.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "merge keeps name order");
    }

    #[test]
    fn snapshot_delta_drops_quiet_series() {
        let base = TelemetrySnapshot {
            counters: vec![("busy".into(), 5), ("quiet".into(), 2)],
            gauges: vec![("g".into(), 1.0)],
            histograms: vec![observed("h", &[1.0])],
        };
        let mut cur = base.clone();
        cur.counters[0].1 = 9; // busy: +4
        let delta = cur.delta_since(&base);
        assert_eq!(delta.counter("busy"), 4);
        assert!(
            !delta.counters.iter().any(|(n, _)| n == "quiet"),
            "zero-delta counters are dropped"
        );
        assert!(delta.histograms.is_empty(), "empty histogram deltas too");
        assert_eq!(delta.gauge("g"), Some(1.0), "gauges keep current values");
    }
}
