//! Hand-crafted slice features for the non-CNN baselines.
//!
//! AutoEncoder-CC and OC-SVM-CC (paper §VII-A) cannot digest raw point
//! clouds; they run on engineered features: "the feature extraction
//! divides each point cloud into slices (0.2-meter intervals,
//! approximating human head length), and extracts features from each
//! slice" — following Leigh et al.'s person-tracking features (boundary
//! regularity, circularity).
//!
//! [`extract`] converts a cluster into a fixed-length [`FeatureVector`]:
//! per-slice geometry (point count, width, depth, mean/σ boundary radius,
//! circularity) plus global shape features (height, extent ratios, point
//! count, centroid height).
//!
//! # Examples
//!
//! ```
//! use features::{extract, FeatureConfig};
//! use geom::Point3;
//!
//! let cfg = FeatureConfig::default();
//! let cloud: Vec<Point3> =
//!     (0..40).map(|i| Point3::new(15.0, 0.0, -2.6 + i as f64 * 0.04)).collect();
//! let f = extract(&cloud, &cfg);
//! assert_eq!(f.values().len(), cfg.feature_len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use geom::Point3;
use serde::{Deserialize, Serialize};

/// Number of per-slice features.
const SLICE_FEATURES: usize = 6;
/// Number of global features appended after the slices when
/// [`FeatureConfig::include_globals`] is set.
const GLOBAL_FEATURES: usize = 6;

/// Configuration for slice-feature extraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Slice thickness in metres (paper: 0.2 m ≈ a human head).
    pub slice_height: f64,
    /// Number of slices counted up from the lowest point; 2.4 m covers
    /// any pedestrian with margin.
    pub slices: usize,
    /// Append whole-cluster features (height, verticality, log point
    /// count, centroid height, footprint). The paper's feature set
    /// (Leigh et al.) is per-slice only, so this defaults to `false`;
    /// enabling it is an ablation that makes the non-CNN baselines
    /// markedly stronger than the paper reports.
    pub include_globals: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            slice_height: 0.2,
            slices: 12,
            include_globals: false,
        }
    }
}

impl FeatureConfig {
    /// Length of the produced feature vector.
    pub fn feature_len(&self) -> usize {
        self.slices * SLICE_FEATURES
            + if self.include_globals {
                GLOBAL_FEATURES
            } else {
                0
            }
    }
}

/// A fixed-length feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    values: Vec<f64>,
}

impl FeatureVector {
    /// The feature values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The values as f32 (for the NN substrate).
    pub fn to_f32(&self) -> Vec<f32> {
        self.values.iter().map(|&v| v as f32).collect()
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when there are no features (never happens for
    /// [`extract`] output).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Extracts the slice-feature vector of a cluster.
///
/// Empty clusters produce an all-zero vector of the configured length —
/// downstream classifiers treat that as "nothing human-like here".
pub fn extract(points: &[Point3], cfg: &FeatureConfig) -> FeatureVector {
    let mut values = vec![0.0; cfg.feature_len()];
    if points.is_empty() {
        return FeatureVector { values };
    }
    let z_min = points.iter().map(|p| p.z).fold(f64::INFINITY, f64::min);
    let z_max = points.iter().map(|p| p.z).fold(f64::NEG_INFINITY, f64::max);
    let n = points.len() as f64;
    let centroid = points.iter().copied().sum::<Point3>() / n;

    // Partition into slices from the bottom up.
    let mut slices: Vec<Vec<Point3>> = vec![Vec::new(); cfg.slices];
    for &p in points {
        let idx = ((p.z - z_min) / cfg.slice_height) as usize;
        if idx < cfg.slices {
            slices[idx].push(p);
        }
    }
    for (s, slice) in slices.iter().enumerate() {
        let base = s * SLICE_FEATURES;
        if slice.is_empty() {
            continue;
        }
        let m = slice.len() as f64;
        let cx = slice.iter().map(|p| p.x).sum::<f64>() / m;
        let cy = slice.iter().map(|p| p.y).sum::<f64>() / m;
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut radii = Vec::with_capacity(slice.len());
        for p in slice {
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
            radii.push(((p.x - cx).powi(2) + (p.y - cy).powi(2)).sqrt());
        }
        let mean_r = radii.iter().sum::<f64>() / m;
        let var_r = radii
            .iter()
            .map(|r| (r - mean_r) * (r - mean_r))
            .sum::<f64>()
            / m;
        let std_r = var_r.sqrt();
        values[base] = m / n; // fraction of points in this slice
        values[base + 1] = max_x - min_x; // depth
        values[base + 2] = max_y - min_y; // width
        values[base + 3] = mean_r; // mean boundary radius
        values[base + 4] = std_r; // boundary regularity
                                  // Circularity: 1 for a perfect circle of points, → 0 as the
                                  // boundary becomes irregular.
        values[base + 5] = if mean_r > 1e-9 {
            1.0 / (1.0 + std_r / mean_r)
        } else {
            0.0
        };
    }

    if !cfg.include_globals {
        return FeatureVector { values };
    }
    let g = cfg.slices * SLICE_FEATURES;
    let height = z_max - z_min;
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let footprint = ((max_x - min_x).max(1e-9)).max((max_y - min_y).max(1e-9));
    values[g] = height;
    values[g + 1] = height / footprint; // verticality — high for humans
    values[g + 2] = (n).ln(); // log point count
    values[g + 3] = centroid.z - z_min; // centroid height within cluster
    values[g + 4] = max_x - min_x;
    values[g + 5] = max_y - min_y;
    FeatureVector { values }
}

/// Extracts features for a batch of clusters into a row-major matrix
/// (`clusters × feature_len`), convenient for the NN substrate.
pub fn extract_batch(clusters: &[Vec<Point3>], cfg: &FeatureConfig) -> Vec<FeatureVector> {
    clusters.iter().map(|c| extract(c, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(n: usize, height: f64) -> Vec<Point3> {
        (0..n)
            .map(|i| Point3::new(15.0, 0.0, -2.6 + height * i as f64 / (n - 1) as f64))
            .collect()
    }

    fn ring(n: usize, r: f64, z: f64) -> Vec<Point3> {
        (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                Point3::new(15.0 + r * a.cos(), r * a.sin(), z)
            })
            .collect()
    }

    fn with_globals() -> FeatureConfig {
        FeatureConfig {
            include_globals: true,
            ..FeatureConfig::default()
        }
    }

    #[test]
    fn length_matches_config() {
        let cfg = FeatureConfig::default();
        assert_eq!(cfg.feature_len(), 12 * 6);
        assert_eq!(with_globals().feature_len(), 12 * 6 + 6);
        let f = extract(&column(30, 1.7), &cfg);
        assert_eq!(f.len(), cfg.feature_len());
        assert_eq!(f.to_f32().len(), f.len());
    }

    #[test]
    fn empty_cloud_is_all_zero() {
        let f = extract(&[], &FeatureConfig::default());
        assert!(f.values().iter().all(|&v| v == 0.0));
        assert!(!f.is_empty());
    }

    #[test]
    fn height_feature_is_exact() {
        let cfg = with_globals();
        let f = extract(&column(50, 1.75), &cfg);
        let g = cfg.slices * 6;
        assert!((f.values()[g] - 1.75).abs() < 1e-9);
    }

    #[test]
    fn tall_cluster_fills_more_slices_than_short() {
        let cfg = FeatureConfig::default();
        let human = extract(&column(50, 1.7), &cfg);
        let bin = extract(&column(50, 0.9), &cfg);
        let occupied =
            |f: &FeatureVector| (0..cfg.slices).filter(|s| f.values()[s * 6] > 0.0).count();
        assert!(occupied(&human) > occupied(&bin));
    }

    #[test]
    fn circularity_high_for_ring_low_for_line() {
        let cfg = FeatureConfig::default();
        let circle = extract(&ring(40, 0.3, -2.0), &cfg);
        // A straight line of points in the same slice.
        let line: Vec<Point3> = (0..40)
            .map(|i| Point3::new(15.0 + i as f64 * 0.02, 0.0, -2.0))
            .collect();
        let flat = extract(&line, &cfg);
        // Both clouds occupy slice 0 of their own frame.
        let circ_c = circle.values()[5];
        let line_c = flat.values()[5];
        assert!(
            circ_c > line_c + 0.05,
            "ring circularity {circ_c} should beat line {line_c}"
        );
    }

    #[test]
    fn verticality_separates_human_from_bench() {
        let cfg = with_globals();
        // Human: tall thin column.
        let human = extract(&column(60, 1.7), &cfg);
        // Bench: wide flat slab.
        let bench: Vec<Point3> = (0..60)
            .map(|i| Point3::new(15.0 + (i % 10) as f64 * 0.15, (i / 10) as f64 * 0.3, -2.55))
            .collect();
        let bench_f = extract(&bench, &cfg);
        let g = cfg.slices * 6 + 1;
        assert!(human.values()[g] > bench_f.values()[g] * 3.0);
    }

    #[test]
    fn points_above_slice_range_are_ignored_not_crashing() {
        let cfg = FeatureConfig {
            slice_height: 0.2,
            slices: 2,
            ..FeatureConfig::default()
        };
        let f = extract(&column(30, 3.0), &cfg);
        assert_eq!(f.len(), cfg.feature_len());
    }

    #[test]
    fn batch_extract_matches_single() {
        let cfg = FeatureConfig::default();
        let a = column(20, 1.5);
        let b = ring(20, 0.2, -2.0);
        let batch = extract_batch(&[a.clone(), b.clone()], &cfg);
        assert_eq!(batch[0], extract(&a, &cfg));
        assert_eq!(batch[1], extract(&b, &cfg));
    }

    #[test]
    fn single_point_cluster() {
        let f = extract(&[Point3::new(15.0, 0.0, -2.0)], &FeatureConfig::default());
        // One point: everything degenerate but finite.
        assert!(f.values().iter().all(|v| v.is_finite()));
    }
}
