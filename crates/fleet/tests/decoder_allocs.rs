//! Allocation accounting for the wire decoder's hostile-input path.
//!
//! A counting global allocator (the `tests/hot_path_allocs.rs`
//! pattern) pins the `FrameDecoder` contract from DESIGN.md: a hostile
//! length prefix is rejected *before* any buffer is reserved for the
//! advertised body. A 4 GiB `body_len` must poison the decoder with
//! the largest single allocation during the whole exchange staying
//! bytes-sized — nothing remotely proportional to the claimed body.
//!
//! One `#[test]` only, so no sibling test allocates concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fleet::{encode, FrameDecoder, Message, WireError};

struct CountingAlloc;

static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static LARGEST_ALLOC: AtomicU64 = AtomicU64::new(0);

fn note(size: usize) {
    ALLOCATED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    LARGEST_ALLOC.fetch_max(size as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn hostile_length_prefix_reserves_nothing() {
    // A genuine frame donates a valid header prefix: magic (4) +
    // version (1) + type (1). Splicing a hostile body length after it
    // makes a header that passes every check up to the length bound.
    let genuine = encode(&Message::Hello { pole_id: 7 });
    let mut hostile = genuine[..6].to_vec();
    hostile.extend_from_slice(&u32::MAX.to_le_bytes()); // body_len = 4 GiB - 1

    // Warm-up: run the whole exchange once on throwaway decoders so
    // every lazily-created telemetry counter and the decoder's buffer
    // growth path already exist before anything is measured.
    {
        let mut dec = FrameDecoder::new();
        dec.push(&genuine);
        assert!(matches!(
            dec.next_message(),
            Ok(Some(Message::Hello { .. }))
        ));
        dec.push(&hostile);
        assert!(matches!(dec.next_message(), Err(WireError::Oversize(_))));
    }

    // The measured run: a warmed decoder (its internal buffer already
    // holds capacity from the genuine frame) takes the hostile header.
    let mut dec = FrameDecoder::new();
    dec.push(&genuine);
    assert!(matches!(
        dec.next_message(),
        Ok(Some(Message::Hello { .. }))
    ));

    let bytes_before = ALLOCATED_BYTES.load(Ordering::SeqCst);
    LARGEST_ALLOC.store(0, Ordering::SeqCst);

    dec.push(&hostile);
    let err = dec.next_message();

    let bytes_delta = ALLOCATED_BYTES.load(Ordering::SeqCst) - bytes_before;
    let largest = LARGEST_ALLOC.load(Ordering::SeqCst);

    match err {
        Err(WireError::Oversize(len)) => assert_eq!(len, u32::MAX),
        other => panic!("expected Oversize, got {other:?}"),
    }
    assert_eq!(dec.pending(), 0, "poisoning must free the buffer");
    // The headline claim: nothing proportional to the advertised 4 GiB
    // body was ever reserved. The rejection happens on push, straight
    // off the 10 header bytes.
    assert!(
        largest < 4096,
        "largest allocation during hostile push was {largest} bytes"
    );
    assert!(
        bytes_delta < 16_384,
        "hostile push allocated {bytes_delta} bytes total"
    );

    // And the decoder stays poisoned: later pushes buffer nothing.
    dec.push(&genuine);
    assert_eq!(dec.pending(), 0);
    assert!(dec.next_message().is_err());
}
