//! Wire capture and bit-exact replay.
//!
//! Every inbound frame the aggregator decodes can be appended to a
//! capture file together with its arrival metadata. The recording can
//! then be fed back through the full decode → sentinel → fusion path,
//! turning any live anomaly into a frozen regression fixture and
//! enabling offline backtesting of fusion changes against a corpus.
//!
//! # File format (version 1)
//!
//! ```text
//! header: magic u32 "HWCR" | version u16 | reserved u16
//! record: arrival nanos u64 | conn id u32 | frame len u32
//!         | frame bytes | crc32 u32 over (arrival..frame)
//! ```
//!
//! All integers little-endian. Arrival times are nanoseconds on the
//! recording aggregator's [`obs::Clock`], stored as integers so a
//! replay under a [`obs::ManualClock`] reproduces them *exactly* —
//! the determinism guarantee below depends on that. Each record
//! carries its own CRC-32 (IEEE), so a truncated or bit-rotted tail
//! is detected at the damaged record, and everything before it is
//! still usable.
//!
//! # Replay determinism
//!
//! [`replay`] partitions records by connection, quantises time into
//! snapshot windows, and feeds each connection's frames in recorded
//! order through per-connection decoders into a shared `FusionCore`
//! under a `ManualClock` that only advances at window barriers. Since
//! fusion is last-seq-wins and the sentinel scores each pole only on
//! its own in-order stream, the snapshot sequence is bit-identical
//! whether the windows are drained by one worker thread or eight —
//! the property the capture-replay CI job pins. (The one caveat: if a
//! single pole's traffic straddles two connections inside one window,
//! cross-connection order is scheduler-chosen, exactly as it was
//! live.)
//!
//! Replay deliberately stays on a single [`FusionCore`]: it is the
//! reference path the sharded live aggregator is measured against.
//! [`crate::ShardedFusion`] assembles snapshots through the same
//! gather/dedup pipeline a lone core uses (seam components merge
//! campus-wide before dedup), so a capture replayed here must match
//! snapshots the reactor produced live, at any shard or worker
//! count — the soak bench's ingest cells assert exactly that.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use obs::ManualClock;
use parking_lot::Mutex;
use world::{PoleRegistry, WalkwayConfig};

use crate::aggregator::{CampusSnapshot, FusionConfig, FusionCore};
use crate::transport::{Transport, TransportError};
use crate::wire::FrameDecoder;

/// Capture file magic: `b"HWCR"` read as a little-endian `u32`.
pub const CAPTURE_MAGIC: u32 = u32::from_le_bytes(*b"HWCR");

/// Capture format version this build writes.
pub const CAPTURE_VERSION: u16 = 1;

/// Everything that can be wrong with a capture file.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file did not start with [`CAPTURE_MAGIC`].
    BadMagic(u32),
    /// The file's format version is newer than this build.
    UnsupportedVersion(u16),
    /// The file ended mid-record.
    Truncated,
    /// A record's CRC did not match its bytes.
    ChecksumMismatch {
        /// Index of the damaged record.
        record: usize,
    },
    /// A record promised an implausibly large frame.
    Oversize(u32),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "capture i/o error: {e}"),
            CaptureError::BadMagic(got) => write!(f, "bad capture magic {got:#010x}"),
            CaptureError::UnsupportedVersion(v) => write!(f, "unsupported capture version {v}"),
            CaptureError::Truncated => write!(f, "capture truncated mid-record"),
            CaptureError::ChecksumMismatch { record } => {
                write!(f, "capture record {record} failed its checksum")
            }
            CaptureError::Oversize(n) => write!(f, "capture record claims {n}-byte frame"),
        }
    }
}

impl std::error::Error for CaptureError {}

impl From<std::io::Error> for CaptureError {
    fn from(e: std::io::Error) -> Self {
        CaptureError::Io(e)
    }
}

/// Largest frame a capture record may claim — the wire's own frame
/// ceiling. Anything larger could never have been decoded live.
const MAX_RECORD_FRAME: usize =
    crate::wire::HEADER_LEN + crate::wire::MAX_BODY_LEN + crate::wire::CHECKSUM_LEN;

/// One recorded wire frame with its arrival metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureRecord {
    /// Arrival time on the recording aggregator's clock.
    pub arrival: Duration,
    /// The connection the frame arrived on (aggregator-assigned,
    /// 1-based; 0 means "unknown/direct").
    pub conn_id: u32,
    /// The complete encoded wire frame, exactly as received.
    pub frame: Vec<u8>,
}

/// Appends wire frames to a capture sink as they are decoded.
pub struct CaptureWriter {
    out: Box<dyn Write + Send>,
    records: u64,
}

impl std::fmt::Debug for CaptureWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaptureWriter")
            .field("records", &self.records)
            .finish()
    }
}

impl CaptureWriter {
    /// Wraps any sink, writing the file header immediately.
    pub fn new(mut out: Box<dyn Write + Send>) -> std::io::Result<Self> {
        out.write_all(&CAPTURE_MAGIC.to_le_bytes())?;
        out.write_all(&CAPTURE_VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?;
        Ok(CaptureWriter { out, records: 0 })
    }

    /// Creates (truncating) a capture file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        CaptureWriter::new(Box::new(BufWriter::new(file)))
    }

    /// An in-memory writer plus a handle to its bytes (tests and the
    /// fixture generator).
    pub fn in_memory() -> (Self, Arc<Mutex<Vec<u8>>>) {
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = Arc::new(Mutex::new(Vec::new()));
        let writer = CaptureWriter::new(Box::new(SharedBuf(Arc::clone(&shared))))
            .expect("vec write cannot fail");
        (writer, shared)
    }

    /// Appends one frame with its arrival metadata.
    pub fn record(&mut self, arrival: Duration, conn_id: u32, frame: &[u8]) -> std::io::Result<()> {
        let mut rec = Vec::with_capacity(16 + frame.len());
        rec.extend_from_slice(&(arrival.as_nanos() as u64).to_le_bytes());
        rec.extend_from_slice(&conn_id.to_le_bytes());
        rec.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        rec.extend_from_slice(frame);
        let crc = crate::wire::crc32(&rec);
        self.out.write_all(&rec)?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.records += 1;
        obs::incr("fleet.capture.frames", 1);
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes the underlying sink.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Parses a complete capture byte string.
pub fn read_capture(bytes: &[u8]) -> Result<Vec<CaptureRecord>, CaptureError> {
    if bytes.len() < 8 {
        return Err(CaptureError::Truncated);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4"));
    if magic != CAPTURE_MAGIC {
        return Err(CaptureError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2"));
    if version > CAPTURE_VERSION {
        return Err(CaptureError::UnsupportedVersion(version));
    }
    let mut records = Vec::new();
    let mut pos = 8usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 16 {
            return Err(CaptureError::Truncated);
        }
        let arrival_nanos = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
        let conn_id = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4"));
        let len = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4"));
        if len as usize > MAX_RECORD_FRAME {
            return Err(CaptureError::Oversize(len));
        }
        let frame_end = pos + 16 + len as usize;
        if bytes.len() < frame_end + 4 {
            return Err(CaptureError::Truncated);
        }
        let expected = u32::from_le_bytes(bytes[frame_end..frame_end + 4].try_into().expect("4"));
        let computed = crate::wire::crc32(&bytes[pos..frame_end]);
        if expected != computed {
            return Err(CaptureError::ChecksumMismatch {
                record: records.len(),
            });
        }
        records.push(CaptureRecord {
            arrival: Duration::from_nanos(arrival_nanos),
            conn_id,
            frame: bytes[pos + 16..frame_end].to_vec(),
        });
        pos = frame_end + 4;
    }
    Ok(records)
}

/// Loads and parses a capture file.
pub fn load_capture(path: &Path) -> Result<Vec<CaptureRecord>, CaptureError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    read_capture(&bytes)
}

/// A [`Transport`] that yields recorded frames instead of live ones.
/// Each `recv` returns the next frame; when the recording runs out,
/// the connection reads as closed. Send is rejected — a recording is
/// read-only.
#[derive(Debug)]
pub struct ReplayTransport {
    frames: std::collections::VecDeque<Vec<u8>>,
}

impl ReplayTransport {
    /// A transport replaying `frames` in order.
    pub fn new(frames: impl IntoIterator<Item = Vec<u8>>) -> Self {
        ReplayTransport {
            frames: frames.into_iter().collect(),
        }
    }

    /// Frames not yet delivered.
    pub fn remaining(&self) -> usize {
        self.frames.len()
    }
}

impl Transport for ReplayTransport {
    fn send(&mut self, _frame: &[u8]) -> Result<(), TransportError> {
        Err(TransportError::Io(String::from(
            "replay transports are read-only",
        )))
    }

    fn recv(&mut self, _timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.frames.pop_front().ok_or(TransportError::Closed)
    }

    fn close(&mut self) {
        self.frames.clear();
    }
}

/// Replays a recording through decode → sentinel → fusion and returns
/// the snapshot sequence, one per `snapshot_every` window of recorded
/// time. `threads` is the worker count draining connections within a
/// window; the result is bit-identical for any value ≥ 1.
pub fn replay(
    records: &[CaptureRecord],
    registry: PoleRegistry,
    walkway: WalkwayConfig,
    fusion: FusionConfig,
    threads: usize,
    snapshot_every: Duration,
) -> Vec<CampusSnapshot> {
    let clock = ManualClock::new();
    let core = Arc::new(Mutex::new(
        FusionCore::new(registry, walkway, fusion).with_clock(clock.handle()),
    ));
    let threads = threads.max(1);

    // Partition by connection, preserving recorded order within each.
    let mut streams: BTreeMap<u32, Vec<&CaptureRecord>> = BTreeMap::new();
    let mut max_arrival = Duration::ZERO;
    for r in records {
        streams.entry(r.conn_id).or_default().push(r);
        max_arrival = max_arrival.max(r.arrival);
    }
    let every = if snapshot_every.is_zero() {
        max_arrival.max(Duration::from_nanos(1))
    } else {
        snapshot_every
    };

    // Per-connection cursor into its stream; connections a verdict
    // killed stop replaying, as they stopped live.
    let conn_ids: Vec<u32> = streams.keys().copied().collect();
    let mut cursors: BTreeMap<u32, usize> = conn_ids.iter().map(|&c| (c, 0)).collect();
    let mut dead: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();

    let mut snapshots = Vec::new();
    let mut cut = Duration::ZERO;
    loop {
        cut += every;
        let final_window = cut >= max_arrival;

        // Work list for this window: each connection's records with
        // arrival <= cut, starting at its cursor.
        let mut window: Vec<(u32, Vec<Vec<u8>>)> = Vec::new();
        for &conn in &conn_ids {
            if dead.contains(&conn) {
                continue;
            }
            let stream = &streams[&conn];
            let start = cursors[&conn];
            let mut end = start;
            while end < stream.len() && stream[end].arrival <= cut {
                end += 1;
            }
            if end > start {
                window.push((
                    conn,
                    stream[start..end].iter().map(|r| r.frame.clone()).collect(),
                ));
            }
            cursors.insert(conn, end);
        }

        // Drain the window: round-robin connections over the workers.
        // Each worker owns whole connections, so per-connection frame
        // order is preserved no matter the interleaving.
        let killed: Vec<u32> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for w in 0..threads {
                let chunk: Vec<&(u32, Vec<Vec<u8>>)> =
                    window.iter().skip(w).step_by(threads).collect();
                if chunk.is_empty() {
                    continue;
                }
                let core = Arc::clone(&core);
                handles.push(s.spawn(move || {
                    let mut killed = Vec::new();
                    for (conn, frames) in chunk {
                        let mut decoder = FrameDecoder::new();
                        'conn: for frame in frames {
                            decoder.push(frame);
                            loop {
                                match decoder.next_message() {
                                    Ok(Some(msg)) => {
                                        let verdict = core.lock().ingest_from(*conn, msg);
                                        if verdict.drop_connection {
                                            killed.push(*conn);
                                            break 'conn;
                                        }
                                    }
                                    Ok(None) => break,
                                    Err(_) => {
                                        killed.push(*conn);
                                        break 'conn;
                                    }
                                }
                            }
                        }
                    }
                    killed
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        dead.extend(killed);

        // Barrier: all of the window's traffic is fused; only now does
        // time advance, so `heard_at` and snapshot timing are
        // independent of worker interleaving.
        clock.set(cut);
        snapshots.push(core.lock().snapshot());
        if final_window {
            break;
        }
    }
    snapshots
}
