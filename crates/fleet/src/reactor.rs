//! The readiness-driven ingest reactor.
//!
//! One *pump* thread owns every connection: it parks on a shared
//! [`ReadySignal`] (in-process transports ping it on delivery) and on
//! `poll(2)` (descriptor-backed transports), drains ready transports
//! with zero-timeout reads, decodes frames, and fans complete
//! messages out to a small worker pool. Workers fold messages into
//! the [`ShardedFusion`]; a connection's messages always land on the
//! same worker (`conn_id % workers`), so per-connection FIFO — the
//! order the sentinel's trust ladder is defined over — survives the
//! fan-out.
//!
//! # Why determinism survives
//!
//! Fusion is last-sequence-wins per pole and the sentinel judges each
//! pole's own stream in connection order, so the fused state is a
//! pure function of *which* messages arrived — never of the thread,
//! poll cycle, or shard that carried them. That is the exact
//! invariant the thread-per-connection path leans on, which is why
//! the two paths produce bit-identical snapshots at any worker count
//! (pinned by `tests/fleet.rs` and the soak bench's ingest cells).
//!
//! Transports that can neither signal readiness nor expose a
//! descriptor are swept once per tick — correct, just not as idle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use obs::Clock;
use parking_lot::Mutex;

use crate::aggregator::ShardedFusion;
use crate::capture::CaptureWriter;
use crate::transport::{ReadySignal, Transport, TransportError};
use crate::wire::{FrameDecoder, Message};

/// The token control traffic (new connections, shutdown pokes) uses
/// on the shared [`ReadySignal`]; data transports use their
/// connection id.
const INTAKE_TOKEN: u64 = u64::MAX;

/// Reactor tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Worker threads folding messages into fusion. 0 = auto.
    pub workers: usize,
    /// Pump park bound: the longest the pump sleeps with nothing
    /// ready, and the sweep cadence for transports without readiness.
    pub tick: Duration,
    /// Per-connection cap on messages decoded but not yet fused; past
    /// it the newest decode is shed (and counted), so one firehosing
    /// pole cannot queue unbounded memory.
    pub inflight_budget: usize,
    /// Cadence for publishing snapshots to the aggregator's
    /// [`crate::SnapshotCell`]; `None` publishes only on demand.
    pub publish_every: Option<Duration>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 0,
            tick: Duration::from_millis(50),
            inflight_budget: 256,
            publish_every: Some(Duration::from_millis(250)),
        }
    }
}

/// Where new connections land before the pump adopts them, plus the
/// signal the whole reactor parks on.
pub(crate) struct Intake {
    pub(crate) signal: Arc<ReadySignal>,
    pending: Mutex<Vec<(u32, Box<dyn Transport>)>>,
}

impl std::fmt::Debug for Intake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Intake")
            .field("pending", &self.pending.lock().len())
            .finish()
    }
}

impl Intake {
    pub(crate) fn new() -> Self {
        Intake {
            signal: Arc::new(ReadySignal::new()),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Queues a connection for the pump and wakes it.
    pub(crate) fn push(&self, conn_id: u32, transport: Box<dyn Transport>) {
        self.pending.lock().push((conn_id, transport));
        self.signal.notify(INTAKE_TOKEN);
    }

    /// Wakes the pump without queueing anything (shutdown, kill
    /// verdicts).
    pub(crate) fn poke(&self) {
        self.signal.notify(INTAKE_TOKEN);
    }

    fn drain(&self) -> Vec<(u32, Box<dyn Transport>)> {
        std::mem::take(&mut *self.pending.lock())
    }
}

/// Everything [`spawn`] needs from the aggregator.
pub(crate) struct ReactorContext {
    pub(crate) fusion: Arc<ShardedFusion>,
    pub(crate) running: Arc<AtomicBool>,
    pub(crate) intake: Arc<Intake>,
    pub(crate) capture: Option<Arc<Mutex<CaptureWriter>>>,
    pub(crate) cfg: ReactorConfig,
}

/// Join handle for a running reactor: the pump and its workers.
#[derive(Debug)]
pub struct ReactorHandle {
    pump: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ReactorHandle {
    /// How many workers the reactor is running.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Waits for the pump to exit and the workers to drain every
    /// accepted message into fusion.
    pub fn join(self) {
        let _ = self.pump.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// One message waiting for its worker, with the shared per-connection
/// accounting the pump and worker coordinate through.
struct Job {
    conn_id: u32,
    msg: Message,
    inflight: Arc<AtomicUsize>,
    kill: Arc<AtomicBool>,
}

fn worker_loop(fusion: Arc<ShardedFusion>, rx: mpsc::Receiver<Job>, signal: Arc<ReadySignal>) {
    // The pump drops its senders when it exits; draining until
    // `Disconnected` means every accepted message is fused before the
    // worker leaves, so `ReactorHandle::join` implies quiescence.
    while let Ok(job) = rx.recv() {
        job.inflight.fetch_sub(1, Ordering::AcqRel);
        if job.kill.load(Ordering::Acquire) {
            // Condemned connection: its queued tail is discarded,
            // matching the reader-thread path which stops at the
            // verdict message.
            continue;
        }
        let verdict = fusion.ingest_from(job.conn_id, job.msg);
        if verdict.drop_connection {
            job.kill.store(true, Ordering::Release);
            signal.notify(INTAKE_TOKEN);
        }
    }
}

pub(crate) fn spawn(ctx: ReactorContext) -> ReactorHandle {
    let nworkers = if ctx.cfg.workers != 0 {
        ctx.cfg.workers
    } else {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        (cores / 2).clamp(1, 8)
    };

    let mut txs = Vec::with_capacity(nworkers);
    let mut workers = Vec::with_capacity(nworkers);
    for w in 0..nworkers {
        let (tx, rx) = mpsc::channel::<Job>();
        txs.push(tx);
        let fusion = Arc::clone(&ctx.fusion);
        let signal = Arc::clone(&ctx.intake.signal);
        workers.push(
            std::thread::Builder::new()
                .name(format!("fusion-worker-{w}"))
                .spawn(move || worker_loop(fusion, rx, signal))
                .expect("spawn fusion worker"),
        );
    }

    let clock = ctx.fusion.clock_handle();
    let pump = Pump {
        fusion: ctx.fusion,
        running: ctx.running,
        intake: ctx.intake,
        capture: ctx.capture,
        clock,
        txs,
        conns: BTreeMap::new(),
        tick: ctx.cfg.tick.max(Duration::from_millis(1)),
        budget: ctx.cfg.inflight_budget.max(1),
        publish_every: ctx.cfg.publish_every,
    };
    let pump = std::thread::Builder::new()
        .name("ingest-pump".into())
        .spawn(move || pump.run())
        .expect("spawn ingest pump");

    ReactorHandle { pump, workers }
}

/// One adopted connection, as the pump sees it.
struct Conn {
    transport: Box<dyn Transport>,
    decoder: FrameDecoder,
    inflight: Arc<AtomicUsize>,
    kill: Arc<AtomicBool>,
    /// The transport pings the shared signal on delivery, so the pump
    /// only visits it when its token surfaces.
    signalled: bool,
    #[cfg(unix)]
    fd: Option<std::os::unix::io::RawFd>,
    dead: bool,
}

struct Pump {
    fusion: Arc<ShardedFusion>,
    running: Arc<AtomicBool>,
    intake: Arc<Intake>,
    capture: Option<Arc<Mutex<CaptureWriter>>>,
    clock: Arc<dyn Clock>,
    txs: Vec<mpsc::Sender<Job>>,
    conns: BTreeMap<u32, Conn>,
    tick: Duration,
    budget: usize,
    publish_every: Option<Duration>,
}

impl Pump {
    fn run(mut self) {
        let mut last_publish = Instant::now();
        while self.running.load(Ordering::SeqCst) {
            let ready = self.wait_ready();
            self.adopt();
            self.drain_cycle(ready);
            self.reap();
            if let Some(every) = self.publish_every {
                if last_publish.elapsed() >= every {
                    self.fusion.snapshot();
                    last_publish = Instant::now();
                }
            }
        }
        // Orderly shutdown: adopt stragglers, drain what has already
        // been delivered, close everything. Dropping the worker
        // senders afterwards lets the workers finish the queued tail
        // and exit.
        self.adopt();
        let ids: Vec<u32> = self.conns.keys().copied().collect();
        for id in ids {
            self.drain_conn(id);
        }
        for (_, mut conn) in std::mem::take(&mut self.conns) {
            conn.transport.close();
        }
    }

    /// Parks until something is ready, returning connection ids whose
    /// readiness was signalled. Descriptor-backed connections park in
    /// `poll(2)`; with none of those, the pump sleeps entirely on the
    /// condvar — zero CPU while the campus is quiet.
    fn wait_ready(&mut self) -> Vec<u32> {
        #[cfg(unix)]
        {
            let mut fd_ids: Vec<u32> = Vec::new();
            let mut pfds: Vec<crate::sys::PollFd> = Vec::new();
            for (&id, c) in &self.conns {
                if c.dead {
                    continue;
                }
                if let Some(fd) = c.fd {
                    fd_ids.push(id);
                    pfds.push(crate::sys::PollFd {
                        fd,
                        events: crate::sys::POLLIN,
                        revents: 0,
                    });
                }
            }
            if !pfds.is_empty() {
                crate::sys::poll_fds(&mut pfds, self.tick);
                // The signal is only drained (not parked on) here:
                // poll is the park, so signalled traffic in a mixed
                // deployment waits at most one tick.
                let mut ready: Vec<u32> = self
                    .intake
                    .signal
                    .drain()
                    .into_iter()
                    .filter(|&t| t != INTAKE_TOKEN)
                    .map(|t| t as u32)
                    .collect();
                for (i, p) in pfds.iter().enumerate() {
                    if p.revents != 0 {
                        ready.push(fd_ids[i]);
                    }
                }
                ready.sort_unstable();
                ready.dedup();
                return ready;
            }
        }
        self.intake
            .signal
            .wait(self.tick)
            .into_iter()
            .filter(|&t| t != INTAKE_TOKEN)
            .map(|t| t as u32)
            .collect()
    }

    fn adopt(&mut self) {
        for (id, mut transport) in self.intake.drain() {
            let signalled = transport.register_ready(&self.intake.signal, u64::from(id));
            #[cfg(unix)]
            let fd = transport.poll_fd();
            self.conns.insert(
                id,
                Conn {
                    transport,
                    decoder: FrameDecoder::new(),
                    inflight: Arc::new(AtomicUsize::new(0)),
                    kill: Arc::new(AtomicBool::new(false)),
                    signalled,
                    #[cfg(unix)]
                    fd,
                    dead: false,
                },
            );
            // Registration re-notifies for frames that arrived before
            // the hand-off, but sweep once anyway so adoption never
            // depends on that courtesy.
            self.drain_conn(id);
        }
    }

    /// Drains every connection due this cycle: the signalled-ready
    /// set, plus a tick-paced sweep of connections that cannot signal.
    fn drain_cycle(&mut self, ready: Vec<u32>) {
        let mut ids = ready;
        for (&id, c) in &self.conns {
            if c.dead || c.signalled {
                continue;
            }
            #[cfg(unix)]
            {
                if c.fd.is_some() {
                    continue; // poll(2) already vouched for these
                }
            }
            ids.push(id);
        }
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            self.drain_conn(id);
        }
    }

    fn drain_conn(&mut self, id: u32) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.dead {
            return;
        }
        loop {
            if conn.kill.load(Ordering::Acquire) {
                conn.dead = true;
                return;
            }
            match conn.transport.recv(Duration::ZERO) {
                Ok(chunk) => {
                    let arrival = self.clock.now();
                    conn.decoder.push(&chunk);
                    loop {
                        if conn.kill.load(Ordering::Acquire) {
                            conn.dead = true;
                            return;
                        }
                        let step = match &self.capture {
                            Some(cap) => conn.decoder.next_message_and_frame().map(|opt| {
                                opt.map(|(msg, frame)| {
                                    // Best-effort: a full capture disk
                                    // must not down the fleet.
                                    let _ = cap.lock().record(arrival, id, &frame);
                                    msg
                                })
                            }),
                            None => conn.decoder.next_message(),
                        };
                        match step {
                            Ok(Some(msg)) => {
                                if conn.inflight.load(Ordering::Acquire) >= self.budget {
                                    // Shed the newest decode: the
                                    // firehosing connection pays for
                                    // its own backlog.
                                    obs::incr("fleet.agg.inflight_dropped", 1);
                                    continue;
                                }
                                conn.inflight.fetch_add(1, Ordering::AcqRel);
                                let worker = id as usize % self.txs.len();
                                let job = Job {
                                    conn_id: id,
                                    msg,
                                    inflight: Arc::clone(&conn.inflight),
                                    kill: Arc::clone(&conn.kill),
                                };
                                if self.txs[worker].send(job).is_err() {
                                    conn.dead = true;
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Framing is unrecoverable mid-stream:
                                // drop the connection, the agent
                                // redials.
                                obs::incr("fleet.agg.decode_errors", 1);
                                conn.dead = true;
                                return;
                            }
                        }
                    }
                }
                Err(TransportError::TimedOut) => return,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Closes and forgets connections that died or were condemned by
    /// a worker's sentinel verdict.
    fn reap(&mut self) {
        let doomed: Vec<u32> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead || c.kill.load(Ordering::Acquire))
            .map(|(&id, _)| id)
            .collect();
        for id in doomed {
            if let Some(mut conn) = self.conns.remove(&id) {
                conn.transport.close();
            }
        }
    }
}
