//! How frames move: blocking byte transports for the pole uplink.
//!
//! Two implementations share one [`Transport`] trait:
//!
//! - **TCP** ([`TcpTransport`] / [`TcpConnector`]) over `std::net`,
//!   for real deployments — Nagle off, bounded read timeouts so the
//!   aggregator's per-connection reader can enforce heartbeat
//!   deadlines.
//! - **Loopback** ([`LoopbackHub`] / [`loopback_pair`]), an
//!   in-process channel with *seeded* loss, reorder, and delay. The
//!   fault pattern is drawn from a per-endpoint `StdRng`, so a test
//!   that connects the same agents in the same order sees the same
//!   drops regardless of thread interleaving — which is what lets the
//!   integration suite pin fused counts bit-identical across 1 and N
//!   agent threads.
//!
//! The loopback is deliberately *frame*-oriented: each
//! [`Transport::send`] call carries one encoded wire frame, and loss/
//! reorder act on whole frames (like a datagram link), never on bytes
//! within a frame. Corrupting bytes mid-frame would poison the
//! receiver's [`crate::wire::FrameDecoder`] by design — that path is
//! exercised separately by the wire fuzz tests.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer hung up (or was never there).
    Closed,
    /// No bytes arrived inside the caller's timeout. The connection
    /// may still be fine — liveness policy is the caller's job.
    TimedOut,
    /// An underlying I/O error, stringly preserved.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::TimedOut => write!(f, "transport receive timed out"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Wakes a reactor when any of its registered sources becomes
/// readable, identified by an opaque per-source token.
///
/// Channel-backed transports (the loopback) cannot be multiplexed by
/// an OS readiness syscall, so the reactor hands each one a shared
/// `ReadySignal` instead: the *sending* side pushes the source's token
/// and pings the condvar on every delivery, and the reactor's event
/// loop parks in [`ReadySignal::wait`] until something is actually
/// ready — no per-connection thread, no busy polling.
#[derive(Debug, Default)]
pub struct ReadySignal {
    state: Mutex<ReadyState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct ReadyState {
    /// Tokens in notification order. Deduplicated: a source that fires
    /// ten times before the reactor wakes is drained once.
    tokens: VecDeque<u64>,
    queued: std::collections::BTreeSet<u64>,
}

impl ReadySignal {
    /// A signal with nothing pending.
    pub fn new() -> Self {
        ReadySignal::default()
    }

    /// Marks `token` ready and wakes any waiting reactor.
    pub fn notify(&self, token: u64) {
        let mut state = self.state.lock();
        if state.queued.insert(token) {
            state.tokens.push_back(token);
        }
        self.cv.notify_one();
    }

    /// Blocks up to `timeout` for at least one ready token, then
    /// drains and returns everything pending (possibly empty on
    /// timeout — the caller's periodic sweep handles stragglers).
    pub fn wait(&self, timeout: Duration) -> Vec<u64> {
        let mut state = self.state.lock();
        if state.tokens.is_empty() {
            self.cv.wait_for(&mut state, timeout);
        }
        state.queued.clear();
        state.tokens.drain(..).collect()
    }

    /// Drains pending tokens without blocking.
    pub fn drain(&self) -> Vec<u64> {
        let mut state = self.state.lock();
        state.queued.clear();
        state.tokens.drain(..).collect()
    }
}

/// A blocking, connection-oriented byte pipe carrying wire frames.
pub trait Transport: Send {
    /// Ships one encoded wire frame. `Ok(())` means *accepted by the
    /// link*, not delivered — the loopback may still drop it.
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError>;

    /// Waits up to `timeout` for bytes and returns whatever arrived
    /// (one frame on the loopback; an arbitrary stream chunk on TCP —
    /// feed it to a [`crate::wire::FrameDecoder`]).
    fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError>;

    /// Releases the connection (flushes any loopback in-flight frame).
    fn close(&mut self);

    /// Asks the transport to ping `signal` with `token` whenever bytes
    /// become available, so a reactor can park instead of polling.
    /// Returns `false` (the default) if the transport has no way to
    /// hook deliveries; such sources fall back to the reactor's
    /// periodic sweep.
    fn register_ready(&mut self, _signal: &Arc<ReadySignal>, _token: u64) -> bool {
        false
    }

    /// The OS file descriptor backing this transport, if any — lets a
    /// reactor multiplex socket transports with `poll(2)` instead of
    /// one thread per connection.
    #[cfg(unix)]
    fn poll_fd(&self) -> Option<std::os::unix::io::RawFd> {
        None
    }
}

/// Dials new [`Transport`] connections; the agent's reconnect loop
/// holds one of these rather than a live socket.
pub trait Connector: Send {
    /// Attempts one connection.
    fn connect(&mut self) -> Result<Box<dyn Transport>, TransportError>;
}

// ---------------------------------------------------------------------------
// TCP.

/// A [`Transport`] over a connected [`TcpStream`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    nonblocking: bool,
}

impl TcpTransport {
    /// Wraps an accepted or dialled stream (disables Nagle: reports
    /// are latency-sensitive and a frame is far below one MSS).
    pub fn new(stream: TcpStream) -> Result<Self, TransportError> {
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(TcpTransport {
            stream,
            nonblocking: false,
        })
    }

    /// Switches the socket between blocking reads (thread-per-
    /// connection readers) and non-blocking reads (reactor sources,
    /// where readiness comes from `poll(2)` and `recv` must only
    /// drain what the kernel already buffered).
    pub fn set_nonblocking(&mut self, on: bool) -> Result<(), TransportError> {
        self.stream
            .set_nonblocking(on)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        self.nonblocking = on;
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.stream.write_all(frame).map_err(|e| {
            if e.kind() == std::io::ErrorKind::BrokenPipe
                || e.kind() == std::io::ErrorKind::ConnectionReset
            {
                TransportError::Closed
            } else {
                TransportError::Io(e.to_string())
            }
        })
    }

    fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        if !self.nonblocking {
            // `set_read_timeout(Some(0))` is an error on std sockets;
            // pin a 1 ms floor instead.
            let timeout = timeout.max(Duration::from_millis(1));
            self.stream
                .set_read_timeout(Some(timeout))
                .map_err(|e| TransportError::Io(e.to_string()))?;
        }
        let mut buf = [0u8; 8 * 1024];
        match self.stream.read(&mut buf) {
            Ok(0) => Err(TransportError::Closed),
            Ok(n) => Ok(buf[..n].to_vec()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Err(TransportError::TimedOut)
            }
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                Err(TransportError::Closed)
            }
            Err(e) => Err(TransportError::Io(e.to_string())),
        }
    }

    fn close(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    #[cfg(unix)]
    fn poll_fd(&self) -> Option<std::os::unix::io::RawFd> {
        use std::os::unix::io::AsRawFd;
        Some(self.stream.as_raw_fd())
    }
}

/// Dials a TCP aggregator by address.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    addr: String,
    connect_timeout: Duration,
}

impl TcpConnector {
    /// A connector for `addr` (e.g. `"127.0.0.1:7700"`).
    pub fn new(addr: impl Into<String>) -> Self {
        TcpConnector {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(2),
        }
    }
}

impl Connector for TcpConnector {
    fn connect(&mut self) -> Result<Box<dyn Transport>, TransportError> {
        let _ = self.connect_timeout; // std's connect_timeout needs a SocketAddr; keep dial simple.
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(Box::new(TcpTransport::new(stream)?))
    }
}

// ---------------------------------------------------------------------------
// Deterministic loopback.

/// Fault model for a loopback link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopbackConfig {
    /// Probability a sent frame is silently dropped.
    pub loss: f64,
    /// Probability a sent frame is held and delivered *after* the
    /// next one (pairwise reorder, the common LAN pathology).
    pub reorder: f64,
    /// Probability a sent frame is torn mid-frame into two stream
    /// chunks (a partial write): the head is delivered at once, the
    /// tail on the next send. Tears the *byte* stream without
    /// corrupting it, exactly like a short TCP write.
    pub partial: f64,
    /// Probability (given a partial write happened) that the tail is
    /// additionally *stalled*: held back until yet another send (or
    /// close) pushes it out — a mid-frame stall, the pathology that
    /// leaves a decoder holding half a frame across recv timeouts.
    pub stall: f64,
    /// Simulated one-way link delay applied on `send` (sleeps the
    /// sender; keep zero in deterministic tests).
    pub delay: Duration,
    /// Seed for the per-endpoint fault RNG. Endpoint `k` dialled from
    /// one connector draws from `seed + k`, so reconnects are
    /// deterministic too.
    pub seed: u64,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        LoopbackConfig {
            loss: 0.0,
            reorder: 0.0,
            partial: 0.0,
            stall: 0.0,
            delay: Duration::ZERO,
            seed: 0,
        }
    }
}

impl LoopbackConfig {
    /// A perfect link.
    pub fn reliable() -> Self {
        LoopbackConfig::default()
    }

    /// A lossy, reordering link seeded for reproducibility.
    pub fn lossy(loss: f64, reorder: f64, seed: u64) -> Self {
        LoopbackConfig {
            loss,
            reorder,
            seed,
            ..LoopbackConfig::default()
        }
    }

    /// An adversarial link: loss and reorder plus byte-level partial
    /// writes and mid-frame stalls, seeded for reproducibility.
    pub fn adversarial(loss: f64, reorder: f64, partial: f64, stall: f64, seed: u64) -> Self {
        LoopbackConfig {
            loss,
            reorder,
            partial,
            stall,
            seed,
            ..LoopbackConfig::default()
        }
    }
}

/// The shared byte-frame queue under one loopback link: a condvar
/// channel whose sender side can additionally ping a reactor's
/// [`ReadySignal`] on every delivery.
#[derive(Debug, Default)]
struct FrameQueue {
    inner: Mutex<FrameQueueInner>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct FrameQueueInner {
    frames: VecDeque<Vec<u8>>,
    sender_closed: bool,
    receiver_closed: bool,
    ready: Option<(Arc<ReadySignal>, u64)>,
}

impl FrameQueue {
    fn push(&self, frame: Vec<u8>) -> Result<(), TransportError> {
        let ready = {
            let mut inner = self.inner.lock();
            if inner.receiver_closed {
                return Err(TransportError::Closed);
            }
            inner.frames.push_back(frame);
            inner.ready.clone()
        };
        self.cv.notify_one();
        if let Some((signal, token)) = ready {
            signal.notify(token);
        }
        Ok(())
    }

    fn pop(&self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(frame) = inner.frames.pop_front() {
                return Ok(frame);
            }
            if inner.sender_closed {
                return Err(TransportError::Closed);
            }
            if timeout.is_zero() || self.cv.wait_for(&mut inner, timeout).timed_out() {
                // Re-check: the sender may have delivered or closed in
                // the window between the timeout and the lock.
                if let Some(frame) = inner.frames.pop_front() {
                    return Ok(frame);
                }
                if inner.sender_closed {
                    return Err(TransportError::Closed);
                }
                return Err(TransportError::TimedOut);
            }
        }
    }

    fn close_sender(&self) {
        let ready = {
            let mut inner = self.inner.lock();
            inner.sender_closed = true;
            inner.ready.clone()
        };
        self.cv.notify_all();
        // Wake the reactor so it notices the hangup instead of waiting
        // for its periodic sweep.
        if let Some((signal, token)) = ready {
            signal.notify(token);
        }
    }

    fn close_receiver(&self) {
        let mut inner = self.inner.lock();
        inner.receiver_closed = true;
        inner.frames.clear();
    }

    fn register_ready(&self, signal: &Arc<ReadySignal>, token: u64) {
        let pending = {
            let mut inner = self.inner.lock();
            inner.ready = Some((Arc::clone(signal), token));
            !inner.frames.is_empty() || inner.sender_closed
        };
        // Anything delivered before registration must still wake the
        // reactor exactly once.
        if pending {
            signal.notify(token);
        }
    }
}

/// Client (sending) end of a loopback link.
#[derive(Debug)]
pub struct LoopbackClient {
    q: Arc<FrameQueue>,
    cfg: LoopbackConfig,
    rng: StdRng,
    held: Option<Vec<u8>>,
    stalled: Option<Vec<u8>>,
    closed: bool,
}

impl LoopbackClient {
    fn deliver(&mut self, frame: Vec<u8>) -> Result<(), TransportError> {
        self.q.push(frame)
    }
}

impl Transport for LoopbackClient {
    fn send(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        if !self.cfg.delay.is_zero() {
            std::thread::sleep(self.cfg.delay);
        }
        // A stalled mid-frame tail from an earlier partial write must
        // go out before anything newer: it is stream bytes, and
        // reordering *bytes* (unlike whole frames) would corrupt.
        if let Some(tail) = self.stalled.take() {
            self.deliver(tail)?;
        }
        if self.cfg.loss > 0.0 && self.rng.gen::<f64>() < self.cfg.loss {
            obs::incr("fleet.loopback.frames_lost", 1);
            return Ok(());
        }
        let frame = frame.to_vec();
        // Partial write: tear the frame into head + tail stream chunks.
        // RNG draws are gated on the knob being enabled so configs
        // without the fault keep their established draw sequence.
        if self.cfg.partial > 0.0 && frame.len() >= 2 && self.rng.gen::<f64>() < self.cfg.partial {
            let cut = self.rng.gen_range(1..frame.len());
            let head = frame[..cut].to_vec();
            let tail = frame[cut..].to_vec();
            obs::incr("fleet.loopback.frames_torn", 1);
            // Byte-stream ordering: any held whole frame precedes the
            // torn one; the fragments themselves are never reordered.
            if let Some(earlier) = self.held.take() {
                self.deliver(earlier)?;
            }
            self.deliver(head)?;
            if self.cfg.stall > 0.0 && self.rng.gen::<f64>() < self.cfg.stall {
                obs::incr("fleet.loopback.frames_stalled", 1);
                self.stalled = Some(tail);
            } else {
                self.deliver(tail)?;
            }
            return Ok(());
        }
        if let Some(earlier) = self.held.take() {
            // Deliver the newer frame first, then the held one: a
            // pairwise swap on the wire.
            self.deliver(frame)?;
            self.deliver(earlier)?;
            obs::incr("fleet.loopback.frames_reordered", 1);
        } else if self.cfg.reorder > 0.0 && self.rng.gen::<f64>() < self.cfg.reorder {
            self.held = Some(frame);
        } else {
            self.deliver(frame)?;
        }
        Ok(())
    }

    fn recv(&mut self, _timeout: Duration) -> Result<Vec<u8>, TransportError> {
        // The fleet protocol is pole → campus only; the client end has
        // nothing to receive.
        Err(TransportError::Closed)
    }

    fn close(&mut self) {
        if !self.closed {
            if let Some(tail) = self.stalled.take() {
                let _ = self.q.push(tail);
            }
            if let Some(frame) = self.held.take() {
                let _ = self.q.push(frame);
            }
            self.q.close_sender();
            self.closed = true;
        }
    }
}

impl Drop for LoopbackClient {
    fn drop(&mut self) {
        self.close();
    }
}

/// Server (receiving) end of a loopback link.
#[derive(Debug)]
pub struct LoopbackServer {
    q: Arc<FrameQueue>,
}

impl Transport for LoopbackServer {
    fn send(&mut self, _frame: &[u8]) -> Result<(), TransportError> {
        Err(TransportError::Io(String::from(
            "loopback is simplex: the campus side never sends",
        )))
    }

    fn recv(&mut self, timeout: Duration) -> Result<Vec<u8>, TransportError> {
        self.q.pop(timeout)
    }

    fn close(&mut self) {
        self.q.close_receiver();
    }

    fn register_ready(&mut self, signal: &Arc<ReadySignal>, token: u64) -> bool {
        self.q.register_ready(signal, token);
        true
    }
}

impl Drop for LoopbackServer {
    fn drop(&mut self) {
        self.q.close_receiver();
    }
}

/// One loopback link: the client end applies `cfg`'s fault model, the
/// server end yields surviving frames in delivery order.
pub fn loopback_pair(cfg: LoopbackConfig) -> (LoopbackClient, LoopbackServer) {
    let q = Arc::new(FrameQueue::default());
    (
        LoopbackClient {
            q: Arc::clone(&q),
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            held: None,
            stalled: None,
            closed: false,
        },
        LoopbackServer { q },
    )
}

/// An in-process "listener": agents dial it through
/// [`LoopbackHub::connector`], the aggregator accepts server ends.
#[derive(Debug)]
pub struct LoopbackHub {
    conn_tx: mpsc::Sender<LoopbackServer>,
    conn_rx: mpsc::Receiver<LoopbackServer>,
}

impl Default for LoopbackHub {
    fn default() -> Self {
        LoopbackHub::new()
    }
}

impl LoopbackHub {
    /// A hub with no connections yet.
    pub fn new() -> Self {
        let (conn_tx, conn_rx) = mpsc::channel();
        LoopbackHub { conn_tx, conn_rx }
    }

    /// A [`Connector`] that dials this hub with `cfg`'s fault model.
    /// The `k`-th connection it makes draws faults from `cfg.seed + k`.
    pub fn connector(&self, cfg: LoopbackConfig) -> LoopbackConnector {
        LoopbackConnector {
            tx: self.conn_tx.clone(),
            cfg,
            dialled: 0,
        }
    }

    /// Waits up to `timeout` for the next inbound connection.
    pub fn accept(&self, timeout: Duration) -> Result<LoopbackServer, TransportError> {
        match self.conn_rx.recv_timeout(timeout) {
            Ok(server) => Ok(server),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::TimedOut),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TransportError::Closed),
        }
    }
}

/// Dials a [`LoopbackHub`]; each dial is a fresh seeded link.
#[derive(Debug, Clone)]
pub struct LoopbackConnector {
    tx: mpsc::Sender<LoopbackServer>,
    cfg: LoopbackConfig,
    dialled: u64,
}

impl Connector for LoopbackConnector {
    fn connect(&mut self) -> Result<Box<dyn Transport>, TransportError> {
        let mut cfg = self.cfg;
        cfg.seed = cfg.seed.wrapping_add(self.dialled);
        self.dialled += 1;
        let (client, server) = loopback_pair(cfg);
        self.tx.send(server).map_err(|_| TransportError::Closed)?;
        Ok(Box::new(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_loopback_delivers_in_order() {
        let (mut client, mut server) = loopback_pair(LoopbackConfig::reliable());
        for i in 0..10u8 {
            client.send(&[i]).unwrap();
        }
        for i in 0..10u8 {
            assert_eq!(server.recv(Duration::from_millis(50)).unwrap(), vec![i]);
        }
        assert_eq!(
            server.recv(Duration::from_millis(5)),
            Err(TransportError::TimedOut)
        );
    }

    #[test]
    fn lossy_loopback_is_deterministic_per_seed() {
        let survivors = |seed: u64| -> Vec<Vec<u8>> {
            let (mut client, mut server) = loopback_pair(LoopbackConfig::lossy(0.3, 0.2, seed));
            for i in 0..50u8 {
                client.send(&[i]).unwrap();
            }
            client.close();
            let mut out = Vec::new();
            while let Ok(frame) = server.recv(Duration::from_millis(5)) {
                out.push(frame);
            }
            out
        };
        let a = survivors(7);
        let b = survivors(7);
        let c = survivors(8);
        assert_eq!(a, b, "same seed, same fault pattern");
        assert!(a.len() < 50, "losses must actually happen at 30%");
        assert!(!a.is_empty());
        assert_ne!(a, c, "different seed, different pattern");
    }

    #[test]
    fn reorder_swaps_adjacent_frames_without_losing_any() {
        let (mut client, mut server) = loopback_pair(LoopbackConfig::lossy(0.0, 0.5, 42));
        let n = 40u8;
        for i in 0..n {
            client.send(&[i]).unwrap();
        }
        client.close(); // flush any held frame
        let mut got = Vec::new();
        while let Ok(frame) = server.recv(Duration::from_millis(5)) {
            got.push(frame[0]);
        }
        assert_eq!(got.len(), n as usize, "reorder never drops");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        assert_ne!(got, sorted, "at 50% reorder some swap must occur");
    }

    #[test]
    fn hub_accepts_each_dialled_connection() {
        let hub = LoopbackHub::new();
        let mut connector = hub.connector(LoopbackConfig::reliable());
        let mut c1 = connector.connect().unwrap();
        let mut c2 = connector.connect().unwrap();
        let mut s1 = hub.accept(Duration::from_millis(50)).unwrap();
        let mut s2 = hub.accept(Duration::from_millis(50)).unwrap();
        c1.send(b"one").unwrap();
        c2.send(b"two").unwrap();
        assert_eq!(s1.recv(Duration::from_millis(50)).unwrap(), b"one");
        assert_eq!(s2.recv(Duration::from_millis(50)).unwrap(), b"two");
        assert_eq!(
            hub.accept(Duration::from_millis(5)).err(),
            Some(TransportError::TimedOut)
        );
    }

    #[test]
    fn dropped_server_closes_the_client() {
        let (mut client, server) = loopback_pair(LoopbackConfig::reliable());
        drop(server);
        assert_eq!(client.send(b"x"), Err(TransportError::Closed));
    }

    #[test]
    fn tcp_round_trips_frames() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut server = TcpTransport::new(stream).unwrap();
            let mut got = Vec::new();
            while got.len() < 6 {
                match server.recv(Duration::from_millis(200)) {
                    Ok(chunk) => got.extend_from_slice(&chunk),
                    Err(TransportError::TimedOut) => continue,
                    Err(e) => panic!("server recv: {e}"),
                }
            }
            got
        });
        let mut connector = TcpConnector::new(addr.to_string());
        let mut client = connector.connect().unwrap();
        client.send(b"abc").unwrap();
        client.send(b"def").unwrap();
        assert_eq!(join.join().unwrap(), b"abcdef");
        client.close();
    }

    #[test]
    fn accept_error_surfaces_as_timeout_first() {
        let hub = LoopbackHub::new();
        assert_eq!(
            hub.accept(Duration::from_millis(2)).err(),
            Some(TransportError::TimedOut)
        );
    }

    #[test]
    fn partial_writes_tear_frames_but_preserve_the_byte_stream() {
        let (mut client, mut server) =
            loopback_pair(LoopbackConfig::adversarial(0.0, 0.0, 1.0, 0.0, 11));
        let frames: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 8]).collect();
        for f in &frames {
            client.send(f).unwrap();
        }
        client.close();
        let mut chunks = 0usize;
        let mut stream = Vec::new();
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            chunks += 1;
            stream.extend_from_slice(&chunk);
        }
        assert!(chunks > frames.len(), "every frame must be torn at 100%");
        let expected: Vec<u8> = frames.concat();
        assert_eq!(stream, expected, "tearing must never corrupt the stream");
    }

    #[test]
    fn stalled_tail_is_flushed_by_the_next_send_or_close() {
        let (mut client, mut server) =
            loopback_pair(LoopbackConfig::adversarial(0.0, 0.0, 1.0, 1.0, 3));
        client.send(b"abcdef").unwrap();
        // Head arrives; the tail is stalled inside the client.
        let head = server.recv(Duration::from_millis(20)).unwrap();
        assert!(!head.is_empty() && head.len() < 6);
        assert_eq!(
            server.recv(Duration::from_millis(5)),
            Err(TransportError::TimedOut),
            "tail must be stalled, not delivered"
        );
        // The next send flushes the stalled tail first, in order.
        client.send(b"ghij").unwrap();
        client.close();
        let mut stream = head;
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            stream.extend_from_slice(&chunk);
        }
        assert_eq!(stream, b"abcdefghij");
    }

    #[test]
    fn adversarial_link_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let (mut client, mut server) =
                loopback_pair(LoopbackConfig::adversarial(0.1, 0.2, 0.5, 0.5, seed));
            for i in 0..60u8 {
                client.send(&[i; 4]).unwrap();
            }
            client.close();
            let mut out = Vec::new();
            while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
                out.push(chunk);
            }
            out
        };
        assert_eq!(run(9), run(9), "same seed, same chunk sequence");
        assert_ne!(run(9), run(10), "different seed, different pattern");
    }

    #[test]
    fn torn_frames_reassemble_through_the_decoder() {
        use crate::wire::{encode, FrameDecoder, Heartbeat, Message};
        let (mut client, mut server) =
            loopback_pair(LoopbackConfig::adversarial(0.0, 0.0, 1.0, 0.5, 17));
        let n = 25u64;
        for seq in 0..n {
            let frame = encode(&Message::Heartbeat(Heartbeat {
                pole_id: 1,
                seq,
                timestamp_ms: seq * 100,
            }));
            client.send(&frame).unwrap();
        }
        client.close();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            dec.push(&chunk);
            while let Ok(Some(msg)) = dec.next_message() {
                got.push(msg);
            }
        }
        let seqs: Vec<u64> = got
            .iter()
            .map(|m| match m {
                Message::Heartbeat(h) => h.seq,
                other => panic!("unexpected message: {other:?}"),
            })
            .collect();
        assert_eq!(seqs, (0..n).collect::<Vec<_>>());
    }
}
