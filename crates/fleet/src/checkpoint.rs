//! Crash-safe aggregator checkpoints.
//!
//! The aggregator's fused state — per-pole slots, liveness timing,
//! cumulative counters, and sentinel trust records — is periodically
//! serialised to a versioned snapshot file so a restarted aggregator
//! resumes with poles still Live and fused people intact, instead of
//! flapping the whole campus Dead while every agent redials.
//!
//! # File format (version 1)
//!
//! ```text
//! magic u32 "HWCK" | version u32 | body len u32 | body | crc32 u32
//! ```
//!
//! The CRC-32 (IEEE) covers the body. Writes go through a temp file
//! in the same directory followed by an atomic rename, so a crash
//! mid-checkpoint leaves the previous checkpoint intact — there is
//! never a moment when the path holds a torn file.
//!
//! Timing state is stored as *silence* (nanoseconds since each pole
//! was last heard, relative to the checkpoint instant) rather than
//! absolute instants: on restore, `heard_at` is rebuilt against the
//! restoring clock. Under a continuous [`obs::ManualClock`] the
//! reconstruction is exact to the nanosecond, which is what lets the
//! warm-restart test pin `CampusSnapshot` bit-identity against an
//! uninterrupted run. Reports are serialised through the public wire
//! codec — there is exactly one byte layout for a report in this
//! codebase.
//!
//! Deliberately *not* checkpointed: the ops-surface telemetry rollups
//! and the event journal (history, not fused state — the campus
//! snapshot must not depend on them), and sentinel connection
//! bindings (connection ids do not survive a restart).

use std::fs;
use std::io::Read;
use std::path::Path;

use crate::aggregator::{FusionStats, Liveness};
use crate::sentinel::PoleTrust;
use crate::wire::{self, Message, PoleReport};

/// Checkpoint file magic: `b"HWCK"` read as a little-endian `u32`.
pub const CHECKPOINT_MAGIC: u32 = u32::from_le_bytes(*b"HWCK");

/// Checkpoint format version this build writes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Everything that can be wrong with a checkpoint file.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file did not start with [`CHECKPOINT_MAGIC`].
    BadMagic(u32),
    /// The file's format version is newer than this build.
    UnsupportedVersion(u32),
    /// The file ended before the structure it promised.
    Truncated,
    /// The body CRC did not match.
    ChecksumMismatch,
    /// A field held a value outside its domain.
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic(got) => write!(f, "bad checkpoint magic {got:#010x}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint failed its checksum"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One pole slot's persisted state.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotCheckpoint {
    /// The pole.
    pub pole_id: u32,
    /// Newest accepted report seq.
    pub last_seq: u64,
    /// Nanoseconds of silence at checkpoint time.
    pub silence_nanos: u64,
    /// Whether the pole's last word was an orderly Bye.
    pub said_bye: bool,
    /// Last liveness journalled for the pole (restored so the journal
    /// does not re-announce transitions it already recorded).
    pub liveness_seen: Liveness,
    /// The fused report, if one had arrived.
    pub report: Option<PoleReport>,
}

/// A complete aggregator checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Checkpoint instant on the taking aggregator's clock, nanos.
    pub taken_at_nanos: u64,
    /// Cumulative fusion counters.
    pub stats: FusionStats,
    /// Per-pole slots, ascending id.
    pub slots: Vec<SlotCheckpoint>,
    /// Per-pole sentinel trust records, ascending id.
    pub sentinel: Vec<PoleTrust>,
}

fn liveness_byte(l: Liveness) -> u8 {
    match l {
        Liveness::Live => 0,
        Liveness::Stale => 1,
        Liveness::Dead => 2,
    }
}

fn liveness_from(b: u8) -> Result<Liveness, CheckpointError> {
    match b {
        0 => Ok(Liveness::Live),
        1 => Ok(Liveness::Stale),
        2 => Ok(Liveness::Dead),
        _ => Err(CheckpointError::Corrupt("liveness")),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

impl Checkpoint {
    /// Merges per-shard checkpoints into one campus checkpoint:
    /// slots and trust records re-key into ascending pole order,
    /// counters sum, and `taken_at_nanos` takes the newest part (all
    /// shards checkpoint on one clock, so parts differ only by lock
    /// acquisition jitter).
    pub fn merge(parts: Vec<Checkpoint>) -> Checkpoint {
        let mut out = Checkpoint {
            taken_at_nanos: 0,
            stats: FusionStats::default(),
            slots: Vec::new(),
            sentinel: Vec::new(),
        };
        for part in parts {
            out.taken_at_nanos = out.taken_at_nanos.max(part.taken_at_nanos);
            out.stats.absorb(&part.stats);
            out.slots.extend(part.slots);
            out.sentinel.extend(part.sentinel);
        }
        out.slots.sort_by_key(|s| s.pole_id);
        out.sentinel.sort_by_key(|t| t.pole_id);
        out
    }

    /// The sub-checkpoint holding only poles `keep` accepts — the
    /// unit a sharded aggregator feeds each fusion shard on restore.
    /// `stats` lets the caller assign the campus-wide counters to
    /// exactly one shard so fleet totals don't multiply.
    pub fn filtered(&self, stats: FusionStats, keep: impl Fn(u32) -> bool) -> Checkpoint {
        Checkpoint {
            taken_at_nanos: self.taken_at_nanos,
            stats,
            slots: self
                .slots
                .iter()
                .filter(|s| keep(s.pole_id))
                .cloned()
                .collect(),
            sentinel: self
                .sentinel
                .iter()
                .filter(|t| keep(t.pole_id))
                .cloned()
                .collect(),
        }
    }

    /// Serialises to the versioned, CRC'd byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(256);
        body.extend_from_slice(&self.taken_at_nanos.to_le_bytes());
        for v in [
            self.stats.reports,
            self.stats.stale_discards,
            self.stats.heartbeats,
            self.stats.hellos,
            self.stats.byes,
            self.stats.telemetry,
            self.stats.rejected,
            self.stats.quarantined,
        ] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        body.extend_from_slice(&(self.slots.len() as u32).to_le_bytes());
        for s in &self.slots {
            body.extend_from_slice(&s.pole_id.to_le_bytes());
            body.extend_from_slice(&s.last_seq.to_le_bytes());
            body.extend_from_slice(&s.silence_nanos.to_le_bytes());
            body.push(u8::from(s.said_bye));
            body.push(liveness_byte(s.liveness_seen));
            match &s.report {
                Some(r) => {
                    // One report layout in the codebase: the wire's.
                    let frame = wire::encode(&Message::Report(r.clone()));
                    body.extend_from_slice(&(frame.len() as u32).to_le_bytes());
                    body.extend_from_slice(&frame);
                }
                None => body.extend_from_slice(&0u32.to_le_bytes()),
            }
        }
        body.extend_from_slice(&(self.sentinel.len() as u32).to_le_bytes());
        for t in &self.sentinel {
            t.write_to(&mut body);
        }

        let mut out = Vec::with_capacity(16 + body.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&wire::crc32(&body).to_le_bytes());
        out
    }

    /// Parses the byte format, verifying version and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 12 {
            return Err(CheckpointError::Truncated);
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4"));
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
        if version > CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let body_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4")) as usize;
        if bytes.len() < 12 + body_len + 4 {
            return Err(CheckpointError::Truncated);
        }
        let body = &bytes[12..12 + body_len];
        let expected = u32::from_le_bytes(
            bytes[12 + body_len..12 + body_len + 4]
                .try_into()
                .expect("4"),
        );
        if wire::crc32(body) != expected {
            return Err(CheckpointError::ChecksumMismatch);
        }

        let mut r = Reader { buf: body, pos: 0 };
        let taken_at_nanos = r.u64()?;
        let stats = FusionStats {
            reports: r.u64()?,
            stale_discards: r.u64()?,
            heartbeats: r.u64()?,
            hellos: r.u64()?,
            byes: r.u64()?,
            telemetry: r.u64()?,
            rejected: r.u64()?,
            quarantined: r.u64()?,
        };
        let n_slots = r.u32()? as usize;
        let mut slots = Vec::with_capacity(n_slots.min(4096));
        for _ in 0..n_slots {
            let pole_id = r.u32()?;
            let last_seq = r.u64()?;
            let silence_nanos = r.u64()?;
            let said_bye = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CheckpointError::Corrupt("said_bye")),
            };
            let liveness_seen = liveness_from(r.u8()?)?;
            let frame_len = r.u32()? as usize;
            let report = if frame_len == 0 {
                None
            } else {
                let frame = r.take(frame_len)?;
                match wire::decode(frame) {
                    Ok(Some((Message::Report(report), consumed))) if consumed == frame_len => {
                        Some(report)
                    }
                    _ => return Err(CheckpointError::Corrupt("slot report frame")),
                }
            };
            slots.push(SlotCheckpoint {
                pole_id,
                last_seq,
                silence_nanos,
                said_bye,
                liveness_seen,
                report,
            });
        }
        let n_sentinel = r.u32()? as usize;
        let mut sentinel = Vec::with_capacity(n_sentinel.min(4096));
        for _ in 0..n_sentinel {
            let pole_id = r.u32()?;
            let score = r.f64()?;
            if !score.is_finite() || score < 0.0 {
                return Err(CheckpointError::Corrupt("trust score"));
            }
            let state = PoleTrust::state_from_byte(r.u8()?)
                .ok_or(CheckpointError::Corrupt("trust state"))?;
            let ban_remaining_ms = r.f64()?;
            if !ban_remaining_ms.is_finite() || ban_remaining_ms < 0.0 {
                return Err(CheckpointError::Corrupt("ban remaining"));
            }
            sentinel.push(PoleTrust {
                pole_id,
                score,
                state,
                ban_remaining_ms,
                fused: r.u64()?,
                quarantined: r.u64()?,
                rejected: r.u64()?,
                violations: r.u64()?,
            });
        }
        if r.pos != body.len() {
            return Err(CheckpointError::Corrupt("trailing bytes"));
        }
        Ok(Checkpoint {
            taken_at_nanos,
            stats,
            slots,
            sentinel,
        })
    }

    /// Writes the checkpoint to `path` atomically: serialise to a
    /// sibling temp file, fsync, rename over the target.
    pub fn save_atomic(&self, path: &Path) -> std::io::Result<()> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("ckpt-tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        obs::incr("fleet.checkpoint.saves", 1);
        Ok(())
    }

    /// Loads and parses a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Checkpoint::from_bytes(&bytes)
    }
}
