//! Minimal readiness FFI for the reactor: `poll(2)`, hand-declared.
//!
//! The vendored dependency set carries no `libc` crate, so the one
//! syscall the ingest reactor parks on is declared here directly and
//! fenced to Linux. Everywhere else [`poll_fds`] degrades to a
//! bounded sleep that reports every descriptor ready; callers then
//! drain with zero-timeout reads, which turns readiness parking into
//! a tick-paced sweep — correct, just not as idle.

use std::time::Duration;

/// One descriptor's interest set, layout-compatible with the kernel's
/// `struct pollfd` on Linux.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: i32,
    /// Requested events (set [`POLLIN`]).
    pub events: i16,
    /// Kernel-reported events; nonzero means "drain me" (readable,
    /// error, or hangup — all of which a zero-timeout read resolves).
    pub revents: i16,
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;

/// Data may be written without blocking. The ingest reactor never
/// waits on writability, but the HTTP serving tier does when a slow
/// reader leaves a partially flushed response behind.
pub const POLLOUT: i16 = 0x004;

#[cfg(target_os = "linux")]
mod imp {
    use super::PollFd;
    use std::time::Duration;

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> usize {
        if fds.is_empty() {
            std::thread::sleep(timeout);
            return 0;
        }
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        // SAFETY: `PollFd` is `#[repr(C)]` and matches `struct pollfd`
        // (int fd, short events, short revents) on Linux; the pointer
        // and length describe a live, exclusively-borrowed slice for
        // the whole call; `poll` writes only inside that slice.
        let n = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        usize::try_from(n).unwrap_or(0)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{PollFd, POLLIN};
    use std::time::Duration;

    /// Portable fallback: sleep out the timeout, then claim everything
    /// is ready. The caller's zero-timeout drain makes spurious
    /// readiness harmless; the sleep bounds the sweep rate.
    pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> usize {
        std::thread::sleep(timeout);
        for fd in fds.iter_mut() {
            fd.revents = POLLIN;
        }
        fds.len()
    }
}

/// Waits up to `timeout` for readiness on `fds`, setting `revents` on
/// ready entries. Returns how many are ready (0 on timeout; errors
/// report as 0 and the caller's next read surfaces them).
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> usize {
    imp::poll_fds(fds, timeout)
}
