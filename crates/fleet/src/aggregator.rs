//! The campus side of the fleet: fusion, liveness, and occupancy.
//!
//! [`FusionCore`] holds one slot per pole, keyed by `pole_id` and
//! updated **last-sequence-wins**: a report only replaces the slot if
//! its `seq` is newer than what the slot holds. That one rule makes
//! the whole tier order-independent — a campus snapshot is a pure
//! function of *which* reports have arrived, not of the order, the
//! socket, or the thread they arrived on. The integration tests pin
//! this by fusing the same traffic through one thread and through
//! eight and demanding bit-identical snapshots.
//!
//! # Dedup geometry
//!
//! Poles overlap on purpose (a corridor surveyed every 15 m with a
//! 23 m ROI sees every walker twice near the seams). Each report
//! carries cluster centroids in the pole's own frame; fusion maps
//! them to campus coordinates through the surveyed
//! [`world::PoleRegistry`] pose and greedily merges any two
//! observations within [`FusionConfig::dedup_radius_m`] (in the
//! ground plane) into one fused person. The greedy pass runs over
//! observations sorted by `(pole_id, cluster index)`, so it is
//! deterministic given the fused state.
//!
//! # Zone sharding
//!
//! At city scale one fusion lock is the bottleneck, so
//! [`ShardedFusion`] splits the campus into zone bands: each
//! registered pole routes to the shard owning its zone column, each
//! shard runs a full [`FusionCore`] behind its own lock, and
//! snapshots are assembled from per-shard gathers. The greedy dedup
//! only ever interacts within connected components of the
//! within-radius graph, so components are computed exactly (grid
//! hash + union-find) and people seen across a seam — a component
//! spanning two shards' observations — are handed off into one
//! campus-wide merge before dedup. The result is bit-identical to
//! running the same traffic through a single core, which the replay
//! fixture and the soak bench pin. Published snapshots go through a
//! [`SnapshotCell`] (epoch + double buffer) so dashboard readers
//! never take a fusion lock.
//!
//! # Liveness
//!
//! A pole is [`Liveness::Live`] while messages keep arriving,
//! [`Liveness::Stale`] after [`FusionConfig::stale_after_ms`] of
//! silence, and [`Liveness::Dead`] after
//! [`FusionConfig::dead_after_ms`] (or immediately on an orderly
//! `Bye`). Dead poles keep their slot — the dashboard should show
//! *which* pole died — but stop contributing people to occupancy.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use counting::HealthState;
use obs::{Clock, Histogram, HistogramCells, SystemClock, TelemetrySnapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use world::{PoleRegistry, WalkwayConfig};

use crate::capture::CaptureWriter;
use crate::checkpoint::{Checkpoint, CheckpointError, SlotCheckpoint};
use crate::health::{EventJournal, FleetEvent, FleetEventKind, FleetHealth, PoleHealth};
use crate::reactor::{self, Intake, ReactorConfig, ReactorHandle};
use crate::sentinel::{Disposition, PoleTrust, Sentinel, SentinelConfig, TrustState};
use crate::transport::{Transport, TransportError};
use crate::wire::{FrameDecoder, Message, PoleReport};

/// Fusion and liveness tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Ground-plane radius (m) within which two cluster centroids
    /// from different poles are the same person. The paper's walkway
    /// data puts nearest-neighbour pedestrian spacing well above a
    /// shoulder width; 0.75 m merges double-sightings without gluing
    /// genuinely separate walkers.
    pub dedup_radius_m: f64,
    /// Silence (ms) after which a pole turns [`Liveness::Stale`].
    pub stale_after_ms: f64,
    /// Silence (ms) after which a pole turns [`Liveness::Dead`] and
    /// its people leave the fused count.
    pub dead_after_ms: f64,
    /// Edge length (m) of the campus occupancy grid zones.
    pub zone_size_m: f64,
    /// Byzantine-input hardening thresholds (see [`SentinelConfig`]).
    pub sentinel: SentinelConfig,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            dedup_radius_m: 0.75,
            stale_after_ms: 2_000.0,
            dead_after_ms: 5_000.0,
            zone_size_m: 20.0,
            sentinel: SentinelConfig::default(),
        }
    }
}

/// Per-pole liveness as judged by the aggregator's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Liveness {
    /// Heard from recently.
    Live,
    /// Quiet past the stale threshold; last data still trusted.
    Stale,
    /// Quiet past the dead threshold (or said `Bye`); excluded from
    /// occupancy.
    Dead,
}

impl Liveness {
    /// Dashboard label.
    pub fn as_str(&self) -> &'static str {
        match self {
            Liveness::Live => "live",
            Liveness::Stale => "stale",
            Liveness::Dead => "dead",
        }
    }
}

/// One pole's row in a campus snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoleStatus {
    /// Pole id.
    pub pole_id: u32,
    /// Liveness at snapshot time.
    pub liveness: Liveness,
    /// Supervisor health from the last report, if any arrived.
    pub health: Option<HealthState>,
    /// Last reported count.
    pub count: u32,
    /// Last accepted report sequence.
    pub seq: u64,
    /// Milliseconds since the aggregator last heard this pole.
    pub silence_ms: f64,
    /// Whether the last report was a held (stale) count.
    pub held: bool,
    /// Where the pole sits on the sentinel's trust ladder.
    pub trust: TrustState,
}

/// One deduplicated pedestrian in campus coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedPerson {
    /// Campus-frame ground position.
    pub x: f64,
    /// Campus-frame ground position.
    pub y: f64,
    /// Best confidence among merged observations.
    pub confidence: f64,
    /// Poles that saw this person (ascending, first is the keeper of
    /// the position).
    pub observers: Vec<u32>,
}

/// Per-zone occupancy on the campus grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneOccupancy {
    /// Grid column (`floor(x / zone_size)`).
    pub zone_x: i32,
    /// Grid row (`floor(y / zone_size)`).
    pub zone_y: i32,
    /// Fused people inside the zone.
    pub count: u32,
}

/// A time-windowed view of the whole campus.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampusSnapshot {
    /// Aggregator-clock timestamp, ms.
    pub at_ms: f64,
    /// Total fused occupancy: deduplicated people plus unmapped
    /// scalar counts.
    pub occupancy: u32,
    /// Deduplicated pedestrians with campus positions.
    pub people: Vec<FusedPerson>,
    /// Counts that could not be placed on the map (held reports carry
    /// no clusters; unregistered poles have no surveyed pose). These
    /// skip dedup, so overlap-zone people may count twice while a
    /// pole is holding.
    pub unmapped: u32,
    /// Non-empty occupancy grid zones, ascending `(zone_x, zone_y)`.
    pub zones: Vec<ZoneOccupancy>,
    /// Every known pole, ascending id.
    pub poles: Vec<PoleStatus>,
    /// Poles currently [`Liveness::Live`].
    pub live: u32,
    /// Poles currently [`Liveness::Stale`].
    pub stale: u32,
    /// Poles currently [`Liveness::Dead`].
    pub dead: u32,
    /// Poles whose trust is [`TrustState::Quarantined`] or worse —
    /// alive, counted in liveness, but excluded from fused occupancy.
    pub quarantined: u32,
    /// 95th-percentile silence across non-dead poles, ms.
    pub p95_silence_ms: f64,
}

/// Renders an `f64` as a JSON number, or `null` when it is not
/// finite. `format!("{v:.3}")` happily prints `NaN` and `inf`, which
/// are not JSON — a poisoned silence percentile must not corrupt the
/// export stream or the HTTP serving tier that reuses it.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

impl CampusSnapshot {
    /// One JSONL line for dashboards and the soak bench. Non-finite
    /// values render as `null` so the line stays parseable JSON even
    /// when a derived rate degenerates.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"at_ms\":{},\"occupancy\":{},\"unmapped\":{},\"live\":{},\"stale\":{},\"dead\":{},\"quarantined\":{},\"p95_silence_ms\":{},\"people\":[",
            json_num(self.at_ms),
            self.occupancy,
            self.unmapped,
            self.live,
            self.stale,
            self.dead,
            self.quarantined,
            json_num(self.p95_silence_ms)
        ));
        for (i, p) in self.people.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"x\":{},\"y\":{},\"confidence\":{},\"observers\":{:?}}}",
                json_num(p.x),
                json_num(p.y),
                json_num(p.confidence),
                p.observers
            ));
        }
        s.push_str("],\"poles\":[");
        for (i, p) in self.poles.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"pole_id\":{},\"liveness\":\"{}\",\"trust\":\"{}\",\"count\":{},\"seq\":{},\"silence_ms\":{},\"held\":{}}}",
                p.pole_id,
                p.liveness.as_str(),
                p.trust.as_str(),
                p.count,
                p.seq,
                json_num(p.silence_ms),
                p.held
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Cumulative aggregator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionStats {
    /// Reports accepted into pole slots.
    pub reports: u64,
    /// Reports discarded because a newer `seq` was already fused
    /// (reorders and duplicates).
    pub stale_discards: u64,
    /// Heartbeats ingested.
    pub heartbeats: u64,
    /// Hello messages ingested.
    pub hellos: u64,
    /// Bye messages ingested.
    pub byes: u64,
    /// Telemetry frames ingested.
    pub telemetry: u64,
    /// Messages the sentinel rejected outright (active bans, pole-id
    /// conflicts).
    pub rejected: u64,
    /// Messages ingested while their pole was quarantined (slot
    /// updated, excluded from fusion).
    pub quarantined: u64,
}

impl FusionStats {
    /// Accumulates another shard's counters into this one (shards
    /// partition the traffic, so campus totals are plain sums).
    pub fn absorb(&mut self, other: &FusionStats) {
        self.reports += other.reports;
        self.stale_discards += other.stale_discards;
        self.heartbeats += other.heartbeats;
        self.hellos += other.hellos;
        self.byes += other.byes;
        self.telemetry += other.telemetry;
        self.rejected += other.rejected;
        self.quarantined += other.quarantined;
    }
}

#[derive(Debug, Clone)]
struct PoleSlot {
    report: Option<PoleReport>,
    last_seq: u64,
    heard_at: Duration,
    said_bye: bool,
    /// Last liveness journalled for this pole; transitions (including
    /// the passive Live→Stale→Dead walks that happen in silence) are
    /// detected against it at every observation point.
    liveness_seen: Liveness,
}

/// Per-pole observability state: everything the scoreboard knows that
/// a [`CampusSnapshot`] must not depend on.
#[derive(Debug, Default)]
struct PoleObs {
    /// End-to-end ingest latency (capture → fused slot), ms.
    ingest: Histogram,
    /// Merged telemetry windows.
    telemetry: TelemetrySnapshot,
    /// Telemetry frames received.
    telemetry_frames: u64,
    /// `window_ms` of the latest telemetry frame.
    last_window_ms: f64,
}

/// The fusion state machine: ingest wire messages, answer campus
/// snapshots. Thread-agnostic — wrap it in [`Aggregator`] for the
/// threaded service.
#[derive(Debug)]
pub struct FusionCore {
    registry: PoleRegistry,
    walkway: WalkwayConfig,
    cfg: FusionConfig,
    clock: Arc<dyn Clock>,
    slots: BTreeMap<u32, PoleSlot>,
    stats: FusionStats,
    obs: BTreeMap<u32, PoleObs>,
    journal: EventJournal,
    sentinel: Sentinel,
}

/// What [`FusionCore::ingest_from`] did with one message, and what
/// the delivering connection should do about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestVerdict {
    /// The sentinel's judgement of the message.
    pub disposition: Disposition,
    /// Whether the delivering connection should be dropped (a ban, or
    /// a pole-id conflict past the strike limit).
    pub drop_connection: bool,
}

impl FusionCore {
    /// A core fusing against the surveyed `registry` on the system
    /// clock.
    pub fn new(registry: PoleRegistry, walkway: WalkwayConfig, cfg: FusionConfig) -> Self {
        let sentinel = Sentinel::new(cfg.sentinel, &registry, &walkway);
        FusionCore {
            registry,
            walkway,
            cfg,
            clock: Arc::new(SystemClock),
            slots: BTreeMap::new(),
            stats: FusionStats::default(),
            obs: BTreeMap::new(),
            journal: EventJournal::default(),
            sentinel,
        }
    }

    /// Replaces the liveness clock (deterministic tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// A handle to the core's clock (connection readers stamp frame
    /// arrivals on the same timeline the core fuses on).
    pub fn clock_handle(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> FusionStats {
        self.stats
    }

    /// The surveyed registry the core fuses against.
    pub fn registry(&self) -> &PoleRegistry {
        &self.registry
    }

    /// Every pole's current sentinel trust record.
    pub fn trust(&self) -> Vec<PoleTrust> {
        let now_ms = self.clock.now().as_secs_f64() * 1e3;
        self.sentinel.export(now_ms)
    }

    /// Folds one wire message into the fused state (direct ingest — no
    /// connection identity, so pole-id conflict tracking is skipped).
    pub fn ingest(&mut self, msg: Message) {
        self.ingest_from(0, msg);
    }

    /// Folds one wire message delivered by connection `conn_id` into
    /// the fused state, after the sentinel has judged it. `conn_id` 0
    /// means "direct ingest, no connection identity".
    pub fn ingest_from(&mut self, conn_id: u32, msg: Message) -> IngestVerdict {
        let now = self.clock.now();
        let now_ms = now.as_secs_f64() * 1e3;
        // Catch any passive Live→Stale→Dead walk that happened in
        // silence before this message, so the journal shows the decay
        // *before* the resurrection it is about to cause.
        let touched = msg.pole_id();
        self.note_liveness(touched, now);

        let last_seq = self.slots.get(&touched).map_or(0, |s| s.last_seq);
        let was_banned = self.sentinel.state_of(touched) == TrustState::Banned;
        let inspection = self.sentinel.inspect(conn_id, &msg, now_ms, last_seq);
        if let Some((from, to)) = inspection.transition {
            obs::incr("fleet.agg.trust_transitions", 1);
            self.journal.push(FleetEvent {
                at_ms: now_ms,
                pole_id: touched,
                kind: FleetEventKind::TrustChanged { from, to },
            });
        }
        match inspection.disposition {
            Disposition::Reject => {
                // Rejected messages never touch the slot: a banned
                // pole walks Stale→Dead exactly as if it were silent,
                // and a conflicting connection cannot refresh the
                // liveness of the pole it is impersonating.
                self.stats.rejected += 1;
                obs::incr("fleet.agg.rejected", 1);
                if was_banned && matches!(msg, Message::Hello { .. }) {
                    obs::incr("fleet.agg.ban_rejects", 1);
                    self.journal.push(FleetEvent {
                        at_ms: now_ms,
                        pole_id: touched,
                        kind: FleetEventKind::BanRejected,
                    });
                }
                return IngestVerdict {
                    disposition: Disposition::Reject,
                    drop_connection: inspection.drop_connection,
                };
            }
            Disposition::Quarantine => {
                // Quarantined traffic still updates the slot (so
                // de-escalation restores data instantly) — the
                // exclusion happens at snapshot time.
                self.stats.quarantined += 1;
                obs::incr("fleet.agg.quarantined", 1);
            }
            Disposition::Fuse => {}
        }

        match msg {
            Message::Hello { pole_id } => {
                self.stats.hellos += 1;
                obs::incr("fleet.agg.hellos", 1);
                let is_new = !self.slots.contains_key(&pole_id);
                let slot = Self::slot_entry(&mut self.slots, pole_id, now);
                slot.heard_at = now;
                slot.said_bye = false;
                let kind = if is_new {
                    FleetEventKind::Connected
                } else {
                    obs::incr("fleet.agg.reconnects", 1);
                    FleetEventKind::Reconnected
                };
                self.journal.push(FleetEvent {
                    at_ms: now_ms,
                    pole_id,
                    kind,
                });
            }
            Message::Report(report) => {
                let pole_id = report.pole_id;
                let slot = Self::slot_entry(&mut self.slots, pole_id, now);
                slot.heard_at = now;
                slot.said_bye = false;
                if report.seq > slot.last_seq {
                    // Journal supervisor-side transitions by diffing
                    // the previous accepted report against this one.
                    if let Some(prev) = &slot.report {
                        if prev.health != report.health {
                            self.journal.push(FleetEvent {
                                at_ms: now_ms,
                                pole_id,
                                kind: FleetEventKind::HealthChanged {
                                    from: prev.health,
                                    to: report.health,
                                },
                            });
                        }
                        if prev.eps_rung != report.eps_rung || prev.precision != report.precision {
                            self.journal.push(FleetEvent {
                                at_ms: now_ms,
                                pole_id,
                                kind: FleetEventKind::LadderChanged {
                                    from: format!(
                                        "{}/{}",
                                        prev.eps_rung.as_str(),
                                        prev.precision.as_str()
                                    ),
                                    to: format!(
                                        "{}/{}",
                                        report.eps_rung.as_str(),
                                        report.precision.as_str()
                                    ),
                                },
                            });
                        }
                    }
                    // Trace context: the pole stamped capture_ms on
                    // its own clock; both ends share the process
                    // epoch in-process (and NTP in the field), so the
                    // difference is the capture→fuse ingest latency.
                    // Skewed stamps (negative latency, or past the
                    // plausible-skew ceiling) are clamped so one bad
                    // clock cannot poison the campus p99.
                    if let Some(capture_ms) = report.capture_ms {
                        let raw_ms = now_ms - capture_ms;
                        let cap = self.cfg.sentinel.max_clock_skew_ms;
                        let latency_ms = raw_ms.clamp(0.0, cap);
                        if raw_ms < 0.0 || raw_ms > cap {
                            obs::incr("fleet.ingest.clock_skew_clamped", 1);
                        }
                        self.obs
                            .entry(pole_id)
                            .or_default()
                            .ingest
                            .observe(latency_ms);
                        obs::observe_ms("fleet.agg.ingest", latency_ms);
                    }
                    slot.last_seq = report.seq;
                    slot.report = Some(report);
                    self.stats.reports += 1;
                    obs::incr("fleet.agg.reports", 1);
                } else {
                    self.stats.stale_discards += 1;
                    obs::incr("fleet.agg.stale_discards", 1);
                }
            }
            Message::Heartbeat(hb) => {
                self.stats.heartbeats += 1;
                obs::incr("fleet.agg.heartbeats", 1);
                let slot = Self::slot_entry(&mut self.slots, hb.pole_id, now);
                slot.heard_at = now;
                slot.said_bye = false;
            }
            Message::Telemetry(frame) => {
                self.stats.telemetry += 1;
                obs::incr("fleet.agg.telemetry", 1);
                let slot = Self::slot_entry(&mut self.slots, frame.pole_id, now);
                slot.heard_at = now;
                slot.said_bye = false;
                let pole = self.obs.entry(frame.pole_id).or_default();
                pole.telemetry.merge(&frame.snapshot);
                pole.telemetry_frames += 1;
                pole.last_window_ms = frame.window_ms;
            }
            Message::Bye { pole_id } => {
                self.stats.byes += 1;
                obs::incr("fleet.agg.byes", 1);
                let slot = Self::slot_entry(&mut self.slots, pole_id, now);
                slot.heard_at = now;
                slot.said_bye = true;
                self.journal.push(FleetEvent {
                    at_ms: now_ms,
                    pole_id,
                    kind: FleetEventKind::Bye,
                });
            }
        }
        // And the transition this message itself caused (resurrection,
        // Bye→Dead).
        self.note_liveness(touched, now);
        IngestVerdict {
            disposition: inspection.disposition,
            drop_connection: inspection.drop_connection,
        }
    }

    fn slot_entry(
        slots: &mut BTreeMap<u32, PoleSlot>,
        pole_id: u32,
        now: Duration,
    ) -> &mut PoleSlot {
        slots.entry(pole_id).or_insert_with(|| PoleSlot {
            report: None,
            last_seq: 0,
            heard_at: now,
            said_bye: false,
            liveness_seen: Liveness::Live,
        })
    }

    /// Journals a liveness transition for `pole_id` if its computed
    /// liveness differs from the last one seen. No-op for unknown
    /// poles.
    fn note_liveness(&mut self, pole_id: u32, now: Duration) {
        let Some(slot) = self.slots.get_mut(&pole_id) else {
            return;
        };
        let liveness = liveness_of(&self.cfg, slot, now);
        if liveness != slot.liveness_seen {
            self.journal.push(FleetEvent {
                at_ms: now.as_secs_f64() * 1e3,
                pole_id,
                kind: FleetEventKind::LivenessChanged {
                    from: slot.liveness_seen,
                    to: liveness,
                },
            });
            obs::incr("fleet.agg.liveness_transitions", 1);
            slot.liveness_seen = liveness;
        }
    }

    fn liveness(&self, slot: &PoleSlot, now: Duration) -> Liveness {
        liveness_of(&self.cfg, slot, now)
    }

    /// Builds the campus view from the current fused state. Pure with
    /// respect to the slots and the clock: calling it twice without
    /// new messages or time passing yields identical snapshots.
    pub fn snapshot(&self) -> CampusSnapshot {
        let now = self.clock.now();
        assemble_snapshot(&self.cfg, now, vec![self.gather(now)])
    }

    /// Everything this core contributes to a campus snapshot at
    /// `now`: pole rows, mapped (not yet deduplicated) observations,
    /// and the liveness tallies. A single core is the one-shard case;
    /// [`ShardedFusion`] gathers every shard on the same `now` and
    /// assembles once, so seam people whose sightings span shards
    /// still merge.
    pub(crate) fn gather(&self, now: Duration) -> ShardGather {
        let mut poles = Vec::with_capacity(self.slots.len());
        let mut observations: Vec<Observation> = Vec::new();
        let mut unmapped = 0u32;
        let (mut live, mut stale, mut dead) = (0u32, 0u32, 0u32);
        let mut quarantined = 0u32;
        let mut silences: Vec<f64> = Vec::new();

        for (&pole_id, slot) in &self.slots {
            let liveness = self.liveness(slot, now);
            let silence_ms = (now.saturating_sub(slot.heard_at)).as_secs_f64() * 1e3;
            let trust = self.sentinel.state_of(pole_id);
            let excluded = trust >= TrustState::Quarantined;
            if excluded {
                quarantined += 1;
            }
            match liveness {
                Liveness::Live => live += 1,
                Liveness::Stale => stale += 1,
                Liveness::Dead => dead += 1,
            }
            if liveness != Liveness::Dead {
                silences.push(silence_ms);
                if let Some(report) = &slot.report {
                    if !excluded {
                        match (self.registry.pose(pole_id), report.clusters.is_empty()) {
                            (Some(pose), false) => {
                                for c in &report.clusters {
                                    let campus = pose.to_campus(c.centroid);
                                    observations.push(Observation {
                                        pole_id,
                                        x: campus.x,
                                        y: campus.y,
                                        confidence: c.confidence,
                                    });
                                }
                            }
                            // Held frames carry no clusters;
                            // unregistered poles have no pose. Their
                            // counts still matter — they just can't
                            // be deduplicated. Saturating: a forged
                            // count near u32::MAX must not wrap the
                            // campus total around zero.
                            _ => unmapped = unmapped.saturating_add(report.count),
                        }
                    }
                }
            }
            poles.push(PoleStatus {
                pole_id,
                liveness,
                health: slot.report.as_ref().map(|r| r.health),
                count: slot.report.as_ref().map_or(0, |r| r.count),
                seq: slot.last_seq,
                silence_ms,
                held: slot.report.as_ref().is_some_and(|r| r.held),
                trust,
            });
        }

        ShardGather {
            poles,
            observations,
            unmapped,
            live,
            stale,
            dead,
            quarantined,
            silences,
        }
    }

    /// Builds the campus health scoreboard: per-pole telemetry rollups
    /// and ingest-latency percentiles, the campus-wide merges, and the
    /// recent event journal. Takes `&mut self` because it first sweeps
    /// liveness over every known pole so passive Stale/Dead walks land
    /// in the journal even when no message forced the transition.
    pub fn health(&mut self) -> FleetHealth {
        let now = self.clock.now();
        let ids: Vec<u32> = self.slots.keys().copied().collect();
        for pole_id in ids {
            self.note_liveness(pole_id, now);
        }

        let mut poles = Vec::with_capacity(self.slots.len());
        let mut campus_ingest = HistogramCells::empty("fleet.ingest");
        let mut campus_telemetry = TelemetrySnapshot::default();
        for (&pole_id, slot) in &self.slots {
            let liveness = liveness_of(&self.cfg, slot, now);
            let (telemetry, ingest, telemetry_frames, last_window_ms) = match self.obs.get(&pole_id)
            {
                Some(o) => {
                    let ingest = o.ingest.cells(&format!("fleet.ingest.pole{pole_id}"));
                    campus_ingest.merge(&ingest);
                    campus_telemetry.merge(&o.telemetry);
                    (
                        o.telemetry.clone(),
                        ingest,
                        o.telemetry_frames,
                        o.last_window_ms,
                    )
                }
                None => (
                    TelemetrySnapshot::default(),
                    HistogramCells::empty(format!("fleet.ingest.pole{pole_id}")),
                    0,
                    0.0,
                ),
            };
            poles.push(PoleHealth {
                pole_id,
                liveness,
                trust: self.sentinel.state_of(pole_id),
                telemetry,
                ingest,
                telemetry_frames,
                last_window_ms,
            });
        }

        FleetHealth {
            at_ms: now.as_secs_f64() * 1e3,
            poles,
            campus_ingest,
            campus_telemetry,
            events_total: self.journal.total(),
            events: self.journal.events().cloned().collect(),
            serve: None,
        }
    }

    /// The fleet event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The walkway geometry poles share.
    pub fn walkway(&self) -> &WalkwayConfig {
        &self.walkway
    }

    /// The fusion tuning this core runs with.
    pub(crate) fn config(&self) -> &FusionConfig {
        &self.cfg
    }

    /// Captures the fused state for crash-safe persistence. Timing is
    /// stored as per-pole *silence* relative to this instant, so a
    /// restore against any clock reconstructs `heard_at` exactly.
    pub fn checkpoint(&self) -> Checkpoint {
        let now = self.clock.now();
        let now_ms = now.as_secs_f64() * 1e3;
        Checkpoint {
            taken_at_nanos: saturating_nanos(now),
            stats: self.stats,
            slots: self
                .slots
                .iter()
                .map(|(&pole_id, s)| SlotCheckpoint {
                    pole_id,
                    last_seq: s.last_seq,
                    silence_nanos: saturating_nanos(now.saturating_sub(s.heard_at)),
                    said_bye: s.said_bye,
                    liveness_seen: s.liveness_seen,
                    report: s.report.clone(),
                })
                .collect(),
            sentinel: self.sentinel.export(now_ms),
        }
    }

    /// Restores fused state from a checkpoint: slots, stats, and
    /// sentinel trust records, with `heard_at` rebuilt against this
    /// core's clock from the checkpointed silences. The ops-surface
    /// telemetry rollups and journal history are not restored (they
    /// are history, not fused state).
    pub fn restore_from(&mut self, ckpt: &Checkpoint) {
        let now = self.clock.now();
        let now_ms = now.as_secs_f64() * 1e3;
        self.stats = ckpt.stats;
        self.slots = ckpt
            .slots
            .iter()
            .map(|s| {
                (
                    s.pole_id,
                    PoleSlot {
                        report: s.report.clone(),
                        last_seq: s.last_seq,
                        heard_at: now.saturating_sub(Duration::from_nanos(s.silence_nanos)),
                        said_bye: s.said_bye,
                        liveness_seen: s.liveness_seen,
                    },
                )
            })
            .collect();
        self.sentinel.import(&ckpt.sentinel, now_ms);
        obs::incr("fleet.checkpoint.restores", 1);
        self.journal.push(FleetEvent {
            at_ms: now_ms,
            pole_id: 0,
            kind: FleetEventKind::Restored {
                poles: ckpt.slots.len() as u32,
            },
        });
    }
}

/// The liveness judgement as a free function, so callers holding a
/// slot borrow can compute it without re-borrowing the whole core.
fn liveness_of(cfg: &FusionConfig, slot: &PoleSlot, now: Duration) -> Liveness {
    if slot.said_bye {
        return Liveness::Dead;
    }
    let silence_ms = (now.saturating_sub(slot.heard_at)).as_secs_f64() * 1e3;
    if silence_ms >= cfg.dead_after_ms {
        Liveness::Dead
    } else if silence_ms >= cfg.stale_after_ms {
        Liveness::Stale
    } else {
        Liveness::Live
    }
}

/// One mapped sighting in campus coordinates, tagged with the pole
/// that saw it. Gathers emit these in `(pole_id, cluster index)`
/// order; shards partition poles, so a stable sort by `pole_id` on
/// the concatenation restores the global greedy-dedup order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Observation {
    pole_id: u32,
    x: f64,
    y: f64,
    confidence: f64,
}

/// Everything one fusion shard contributes to a campus snapshot.
/// Observations are *not* deduplicated yet — a person straddling a
/// zone seam is seen by poles on different shards, and only the
/// campus-wide assembly may merge those sightings.
#[derive(Debug, Default)]
pub(crate) struct ShardGather {
    poles: Vec<PoleStatus>,
    observations: Vec<Observation>,
    unmapped: u32,
    live: u32,
    stale: u32,
    dead: u32,
    quarantined: u32,
    silences: Vec<f64>,
}

/// Assembles per-shard gathers into the campus snapshot. This is the
/// seam hand-off point: every shard's observations meet here before
/// dedup, so cross-shard double-sightings fuse exactly as they would
/// in a single core.
pub(crate) fn assemble_snapshot(
    cfg: &FusionConfig,
    now: Duration,
    gathers: Vec<ShardGather>,
) -> CampusSnapshot {
    let mut poles = Vec::new();
    let mut observations: Vec<Observation> = Vec::new();
    let mut silences: Vec<f64> = Vec::new();
    let mut unmapped = 0u32;
    let (mut live, mut stale, mut dead, mut quarantined) = (0u32, 0u32, 0u32, 0u32);
    for g in gathers {
        poles.extend(g.poles);
        observations.extend(g.observations);
        silences.extend(g.silences);
        unmapped = unmapped.saturating_add(g.unmapped);
        live += g.live;
        stale += g.stale;
        dead += g.dead;
        quarantined += g.quarantined;
    }
    // Shards partition poles; stable sorts by pole id restore the
    // global orders a single core would have produced.
    poles.sort_by_key(|p| p.pole_id);
    observations.sort_by_key(|o| o.pole_id);

    let people = dedup_people(&observations, cfg.dedup_radius_m);

    let mut zone_counts: BTreeMap<(i32, i32), u32> = BTreeMap::new();
    let zone = cfg.zone_size_m.max(1e-9);
    for p in &people {
        let key = ((p.x / zone).floor() as i32, (p.y / zone).floor() as i32);
        *zone_counts.entry(key).or_insert(0) += 1;
    }
    let zones = zone_counts
        .into_iter()
        .map(|((zone_x, zone_y), count)| ZoneOccupancy {
            zone_x,
            zone_y,
            count,
        })
        .collect();

    let p95_silence_ms = p95_silence(&mut silences);

    // Checked at the u32 boundary: a hostile fleet reporting 2^32
    // people must pin the gauge at u32::MAX, not wrap past zero.
    let occupancy = u32::try_from(people.len())
        .unwrap_or(u32::MAX)
        .saturating_add(unmapped);
    obs::set_gauge("fleet.occupancy", f64::from(occupancy));
    obs::set_gauge("fleet.poles_live", f64::from(live));
    obs::set_gauge("fleet.poles_stale", f64::from(stale));
    obs::set_gauge("fleet.poles_dead", f64::from(dead));
    obs::set_gauge("fleet.poles_quarantined", f64::from(quarantined));
    obs::set_gauge("fleet.p95_silence_ms", p95_silence_ms);

    CampusSnapshot {
        at_ms: now.as_secs_f64() * 1e3,
        occupancy,
        people,
        unmapped,
        zones,
        poles,
        live,
        stale,
        dead,
        quarantined,
        p95_silence_ms,
    }
}

/// Greedy ground-plane dedup, decomposed by connected components of
/// the within-radius graph.
///
/// The historical single-core pass walked observations in
/// `(pole_id, cluster index)` order and merged each into the first
/// already-founded person within the radius. Two facts make an exact
/// decomposition possible: (a) an observation can only merge into a
/// founder it is within radius of, i.e. a neighbour in the radius
/// graph, and (b) founders keep their founding observation's
/// position, so every candidate founder for an observation lies in
/// its own connected component. Observations in different components
/// therefore never interact, and running the identical greedy walk
/// per component (members in ascending global order), then stitching
/// people back in founder order, reproduces the single-core output
/// bit for bit — no matter how many shards the observations came
/// from. The components are found with a grid hash (cells one radius
/// wide, so all edges live within a 3×3 neighbourhood) and a
/// union-find.
fn dedup_people(obs: &[Observation], radius_m: f64) -> Vec<FusedPerson> {
    let n = obs.len();
    if n == 0 {
        return Vec::new();
    }
    let radius = radius_m.max(0.0);
    let radius2 = radius * radius;
    let cell = radius.max(1e-9);

    let mut bins: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
    for (i, o) in obs.iter().enumerate() {
        let key = ((o.x / cell).floor() as i64, (o.y / cell).floor() as i64);
        bins.entry(key).or_default().push(i);
    }

    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut parent: Vec<usize> = (0..n).collect();
    for (&(cx, cy), members) in &bins {
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                // Saturating keys can alias at the numeric edge; the
                // distance check below still guards every union, so
                // aliasing only costs comparisons, never correctness.
                let key = (cx.saturating_add(dx), cy.saturating_add(dy));
                let Some(others) = bins.get(&key) else {
                    continue;
                };
                for &i in members {
                    for &j in others {
                        if j <= i {
                            continue;
                        }
                        let ddx = obs[i].x - obs[j].x;
                        let ddy = obs[i].y - obs[j].y;
                        if ddx * ddx + ddy * ddy <= radius2 {
                            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                            if ri != rj {
                                parent[ri.max(rj)] = ri.min(rj);
                            }
                        }
                    }
                }
            }
        }
    }

    let mut components: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        components.entry(find(&mut parent, i)).or_default().push(i);
    }

    let mut founded: Vec<(usize, FusedPerson)> = Vec::with_capacity(components.len());
    for members in components.into_values() {
        let start = founded.len();
        'member: for &i in &members {
            let o = &obs[i];
            for (_, person) in &mut founded[start..] {
                let dx = o.x - person.x;
                let dy = o.y - person.y;
                if dx * dx + dy * dy <= radius2 {
                    if !person.observers.contains(&o.pole_id) {
                        person.observers.push(o.pole_id);
                    }
                    person.confidence = person.confidence.max(o.confidence);
                    continue 'member;
                }
            }
            founded.push((
                i,
                FusedPerson {
                    x: o.x,
                    y: o.y,
                    confidence: o.confidence,
                    observers: vec![o.pole_id],
                },
            ));
        }
    }
    // People surface in founding order — the order the single-core
    // greedy walk would have created them in.
    founded.sort_by_key(|&(founder, _)| founder);
    founded.into_iter().map(|(_, p)| p).collect()
}

/// 95th-percentile silence. Sorted under `f64::total_cmp`: a NaN
/// silence (conjured by adversarial or badly skewed timestamps)
/// sorts last deterministically instead of panicking the snapshot
/// path for the whole campus.
fn p95_silence(silences: &mut [f64]) -> f64 {
    silences.sort_by(f64::total_cmp);
    if silences.is_empty() {
        return 0.0;
    }
    let idx = ((silences.len() as f64 * 0.95).ceil() as usize).max(1) - 1;
    silences[idx.min(silences.len() - 1)]
}

/// `Duration::as_nanos` is u128 but the checkpoint stores u64.
/// Saturate instead of truncating: a skewed clock can measure a
/// silence in centuries, and `as u64` would wrap it into a
/// recent-looking value that restores as a live pole.
fn saturating_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A callback fired after every [`SnapshotCell::publish`], outside
/// the writer lock. The serving tier registers one to wake its HTTP
/// reactor so parked long-polls complete within a publish, not a
/// poll-tick.
pub trait PublishHook: Send + Sync {
    /// Called with the epoch the publish just installed.
    fn on_publish(&self, epoch: u64);
}

/// Epoch-stamped double-buffered snapshot publication.
///
/// The writer fills the inactive slot, then bumps the epoch; readers
/// clone the active slot's `Arc` and retry if the epoch moved under
/// them. Readers never touch a fusion lock, so a dashboard poll
/// cannot stall ingest and a fusion stall cannot freeze dashboards —
/// they just keep the previous epoch.
pub struct SnapshotCell {
    epoch: AtomicU64,
    slots: [Mutex<Arc<CampusSnapshot>>; 2],
    writer: Mutex<()>,
    hooks: Mutex<Vec<Arc<dyn PublishHook>>>,
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("epoch", &self.epoch())
            .field("hooks", &self.hooks.lock().len())
            .finish()
    }
}

impl Default for SnapshotCell {
    fn default() -> Self {
        SnapshotCell::new()
    }
}

impl SnapshotCell {
    /// An empty cell at epoch 0 (nothing published yet).
    pub fn new() -> Self {
        let empty = Arc::new(CampusSnapshot::default());
        SnapshotCell {
            epoch: AtomicU64::new(0),
            slots: [Mutex::new(Arc::clone(&empty)), Mutex::new(empty)],
            writer: Mutex::new(()),
            hooks: Mutex::new(Vec::new()),
        }
    }

    /// The published epoch; bumps by one per publish. Epoch 0 means
    /// nothing has ever been published: readers get the empty default
    /// snapshot, and consumers that need "real data arrived" must
    /// check for a nonzero epoch rather than a nonzero occupancy (an
    /// empty campus is a legitimate published state).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Registers a hook fired after each publish.
    pub fn add_hook(&self, hook: Arc<dyn PublishHook>) {
        self.hooks.lock().push(hook);
    }

    /// Publishes `snap` as the new current snapshot.
    pub fn publish(&self, snap: Arc<CampusSnapshot>) {
        let epoch = {
            let _writer = self.writer.lock();
            let epoch = self.epoch.load(Ordering::Acquire);
            // Writers only ever touch the *inactive* slot, so a reader
            // on the active slot never blocks on a publish.
            *self.slots[((epoch + 1) & 1) as usize].lock() = snap;
            self.epoch.store(epoch + 1, Ordering::Release);
            epoch + 1
        };
        // Hooks run outside the writer lock: a slow waker delays the
        // next publish, never a concurrent reader.
        let hooks = self.hooks.lock().clone();
        for hook in hooks {
            hook.on_publish(epoch);
        }
    }

    /// The most recently published snapshot (empty before the first
    /// publish).
    pub fn read(&self) -> Arc<CampusSnapshot> {
        self.read_versioned().1
    }

    /// The current epoch and its snapshot as one consistent pair.
    ///
    /// `(epoch(), read())` called separately can tear — a publish
    /// between the two calls pairs epoch N with snapshot N+1, which
    /// would hand an HTTP reader an `ETag` that lies about the body.
    /// This loops until both loads land on the same epoch.
    pub fn read_versioned(&self) -> (u64, Arc<CampusSnapshot>) {
        loop {
            let epoch = self.epoch.load(Ordering::Acquire);
            let snap = Arc::clone(&self.slots[(epoch & 1) as usize].lock());
            if self.epoch.load(Ordering::Acquire) == epoch {
                return (epoch, snap);
            }
        }
    }
}

/// Zone-sharded fusion: independent [`FusionCore`]s behind per-shard
/// locks, with registered poles routed to shards by campus zone
/// column (unregistered poles hash by id). Ingest for different
/// shards never contends; snapshots gather every shard at one
/// instant and assemble campus-wide (see [`assemble_snapshot`] for
/// the seam hand-off), then publish through a [`SnapshotCell`].
#[derive(Debug)]
pub struct ShardedFusion {
    shards: Vec<Mutex<FusionCore>>,
    route: BTreeMap<u32, usize>,
    cfg: FusionConfig,
    clock: Arc<dyn Clock>,
    cell: Arc<SnapshotCell>,
}

/// Auto shard count: one shard per 64 registered poles, capped so
/// shard bookkeeping never dominates a small campus.
fn auto_shards(poles: usize) -> usize {
    if poles < 64 {
        1
    } else {
        (poles / 64).clamp(2, 8)
    }
}

/// Routes registered poles to shards as contiguous zone-column bands:
/// poles sort by `(zone column, pole_id)` and split into equal-count
/// bands, so shard neighbours are campus neighbours and every seam is
/// shared by exactly two adjacent shards.
fn zone_route(registry: &PoleRegistry, zone_size_m: f64, nshards: usize) -> BTreeMap<u32, usize> {
    let zone = zone_size_m.max(1e-9);
    let mut keyed: Vec<(i64, u32)> = registry
        .poses()
        .map(|p| (((p.x / zone).floor()) as i64, p.pole_id))
        .collect();
    keyed.sort_unstable();
    let n = keyed.len().max(1);
    keyed
        .into_iter()
        .enumerate()
        .map(|(i, (_, pole_id))| (pole_id, i * nshards / n))
        .collect()
}

impl ShardedFusion {
    /// A sharded fusion over `shards` zone bands (0 = auto from the
    /// registry size) on the given clock. Every shard holds a full
    /// registry — routing, not geometry, is what partitions them.
    pub fn new(
        registry: PoleRegistry,
        walkway: WalkwayConfig,
        cfg: FusionConfig,
        shards: usize,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let nshards = if shards == 0 {
            auto_shards(registry.len())
        } else {
            shards
        }
        .max(1);
        let route = zone_route(&registry, cfg.zone_size_m, nshards);
        let shards = (0..nshards)
            .map(|_| {
                Mutex::new(
                    FusionCore::new(registry.clone(), walkway, cfg).with_clock(Arc::clone(&clock)),
                )
            })
            .collect();
        ShardedFusion {
            shards,
            route,
            cfg,
            clock,
            cell: Arc::new(SnapshotCell::new()),
        }
    }

    /// Wraps an existing core as a single shard (deterministic tests,
    /// injected clocks).
    pub fn single(core: FusionCore) -> Self {
        let cfg = *core.config();
        let clock = core.clock_handle();
        ShardedFusion {
            shards: vec![Mutex::new(core)],
            route: BTreeMap::new(),
            cfg,
            clock,
            cell: Arc::new(SnapshotCell::new()),
        }
    }

    /// How many shards the campus is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `pole_id`: its zone band when registered,
    /// id-hash otherwise.
    pub fn shard_of(&self, pole_id: u32) -> usize {
        self.route
            .get(&pole_id)
            .copied()
            .unwrap_or(pole_id as usize % self.shards.len())
    }

    /// The clock all shards fuse on.
    pub fn clock_handle(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Folds one message into the owning shard (see
    /// [`FusionCore::ingest_from`]). Only that shard's lock is taken.
    pub fn ingest_from(&self, conn_id: u32, msg: Message) -> IngestVerdict {
        let shard = self.shard_of(msg.pole_id());
        self.shards[shard].lock().ingest_from(conn_id, msg)
    }

    /// Direct ingest without a connection identity.
    pub fn ingest(&self, msg: Message) {
        self.ingest_from(0, msg);
    }

    /// Builds the campus view by gathering every shard at one instant
    /// and assembling once (cross-shard seam people merge here), then
    /// publishes it to the snapshot cell.
    pub fn snapshot(&self) -> CampusSnapshot {
        let now = self.clock.now();
        let gathers = self
            .shards
            .iter()
            .map(|s| s.lock().gather(now))
            .collect::<Vec<_>>();
        let snap = assemble_snapshot(&self.cfg, now, gathers);
        self.cell.publish(Arc::new(snap.clone()));
        snap
    }

    /// The last published snapshot — readers never touch a fusion
    /// lock.
    pub fn published(&self) -> Arc<CampusSnapshot> {
        self.cell.read()
    }

    /// The publish epoch (bumps once per [`ShardedFusion::snapshot`]).
    pub fn publish_epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// A shared handle to the publication cell — what the HTTP
    /// serving tier reads from (and parks its long-polls on) without
    /// ever touching a fusion lock.
    pub fn cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.cell)
    }

    /// Campus-wide counters (summed over shards).
    pub fn stats(&self) -> FusionStats {
        let mut out = FusionStats::default();
        for shard in &self.shards {
            out.absorb(&shard.lock().stats());
        }
        out
    }

    /// Every pole's sentinel trust record, ascending pole id.
    pub fn trust(&self) -> Vec<PoleTrust> {
        let mut out: Vec<PoleTrust> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().trust());
        }
        out.sort_by_key(|t| t.pole_id);
        out
    }

    /// The merged campus health scoreboard.
    pub fn health(&self) -> FleetHealth {
        let parts = self
            .shards
            .iter()
            .map(|s| s.lock().health())
            .collect::<Vec<_>>();
        FleetHealth::merge(parts)
    }

    /// The merged fleet event journal as JSONL, interleaved by event
    /// time (stable across shards).
    pub fn events_jsonl(&self) -> String {
        let mut events: Vec<FleetEvent> = Vec::new();
        for shard in &self.shards {
            events.extend(shard.lock().journal().events().cloned());
        }
        events.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        let mut out = String::new();
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// A campus checkpoint merged from every shard.
    pub fn checkpoint(&self) -> Checkpoint {
        let parts = self
            .shards
            .iter()
            .map(|s| s.lock().checkpoint())
            .collect::<Vec<_>>();
        Checkpoint::merge(parts)
    }

    /// Restores a campus checkpoint by routing each pole's slot and
    /// trust record to its owning shard. The campus-wide counters
    /// land on shard 0 so fleet totals don't multiply.
    pub fn restore_from(&self, ckpt: &Checkpoint) {
        for (idx, shard) in self.shards.iter().enumerate() {
            let stats = if idx == 0 {
                ckpt.stats
            } else {
                FusionStats::default()
            };
            let sub = ckpt.filtered(stats, |pole_id| self.shard_of(pole_id) == idx);
            shard.lock().restore_from(&sub);
        }
    }
}

/// Aggregator service tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregatorConfig {
    /// Fusion and liveness parameters.
    pub fusion: FusionConfig,
    /// Per-connection receive poll timeout, ms (bounds how fast a
    /// reader thread notices shutdown, and the reactor's park tick).
    pub recv_timeout_ms: u64,
    /// Most decoded messages one connection may have waiting for the
    /// fusion lock at once. Past the budget the oldest waiting message
    /// is dropped (and counted), so one firehosing pole sheds its own
    /// backlog instead of starving the rest of the fleet.
    pub inflight_budget: usize,
    /// Fusion shards (zone bands). 0 = auto from the registry size.
    /// Ignored by [`Aggregator::with_core`], which wraps the given
    /// core as a single shard.
    pub fusion_shards: usize,
    /// Reactor worker threads. 0 = auto from available parallelism.
    pub reactor_workers: usize,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            fusion: FusionConfig::default(),
            recv_timeout_ms: 50,
            inflight_budget: 256,
            fusion_shards: 0,
            reactor_workers: 0,
        }
    }
}

/// The campus occupancy service over a [`ShardedFusion`]. Two ingest
/// paths share the fused state and produce bit-identical snapshots:
///
/// - [`Aggregator::spawn_connection`] — the historical reader thread
///   per connection;
/// - [`Aggregator::spawn_reactor`] + [`Aggregator::add_connection`] —
///   one readiness-driven pump and a small worker pool, the path that
///   scales to a thousand poles.
#[derive(Debug)]
pub struct Aggregator {
    fusion: Arc<ShardedFusion>,
    cfg: AggregatorConfig,
    running: Arc<AtomicBool>,
    capture: Option<Arc<Mutex<CaptureWriter>>>,
    next_conn: Arc<AtomicU32>,
    intake: Arc<Intake>,
    reactor_live: Arc<AtomicBool>,
}

impl Aggregator {
    /// A service fusing against `registry` on the system clock.
    pub fn new(registry: PoleRegistry, walkway: WalkwayConfig, cfg: AggregatorConfig) -> Self {
        Aggregator::from_fusion(
            ShardedFusion::new(
                registry,
                walkway,
                cfg.fusion,
                cfg.fusion_shards,
                Arc::new(SystemClock),
            ),
            cfg,
        )
    }

    /// A service on an injected clock (deterministic tests and
    /// benches that still want zone sharding).
    pub fn with_clock(
        registry: PoleRegistry,
        walkway: WalkwayConfig,
        cfg: AggregatorConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Aggregator::from_fusion(
            ShardedFusion::new(registry, walkway, cfg.fusion, cfg.fusion_shards, clock),
            cfg,
        )
    }

    /// Wraps an existing core (e.g. one with an injected clock) as a
    /// single fusion shard.
    pub fn with_core(core: FusionCore, cfg: AggregatorConfig) -> Self {
        Aggregator::from_fusion(ShardedFusion::single(core), cfg)
    }

    fn from_fusion(fusion: ShardedFusion, cfg: AggregatorConfig) -> Self {
        Aggregator {
            fusion: Arc::new(fusion),
            cfg,
            running: Arc::new(AtomicBool::new(true)),
            capture: None,
            // Connection ids are 1-based; 0 is "direct ingest".
            next_conn: Arc::new(AtomicU32::new(1)),
            intake: Arc::new(Intake::new()),
            reactor_live: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The sharded fusion behind this service (benches poke shard
    /// routing; dashboards read published snapshots through it).
    pub fn fusion(&self) -> Arc<ShardedFusion> {
        Arc::clone(&self.fusion)
    }

    /// The last published snapshot, without touching any fusion lock.
    pub fn published(&self) -> Arc<CampusSnapshot> {
        self.fusion.published()
    }

    /// The snapshot publication cell, for attaching an HTTP serving
    /// tier (`crates/serve`) to this aggregator.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell> {
        self.fusion.cell()
    }

    /// Records every inbound wire frame to `writer` as it is decoded.
    pub fn with_capture(mut self, writer: CaptureWriter) -> Self {
        self.capture = Some(Arc::new(Mutex::new(writer)));
        self
    }

    /// The current campus view (freshly assembled, and published to
    /// the snapshot cell as a side effect).
    pub fn snapshot(&self) -> CampusSnapshot {
        self.fusion.snapshot()
    }

    /// Cumulative fusion counters.
    pub fn stats(&self) -> FusionStats {
        self.fusion.stats()
    }

    /// Every pole's current sentinel trust record.
    pub fn trust(&self) -> Vec<PoleTrust> {
        self.fusion.trust()
    }

    /// Asks every reader thread and the reactor to wind down at their
    /// next poll, and flushes the capture sink so a recording is
    /// complete on disk.
    pub fn stop(&self) {
        self.running.store(false, Ordering::SeqCst);
        // Wake the reactor pump so shutdown is prompt, not tick-paced.
        self.intake.poke();
        if let Some(cap) = &self.capture {
            let _ = cap.lock().flush();
        }
    }

    /// Captures the fused state (see [`FusionCore::checkpoint`]).
    pub fn checkpoint(&self) -> Checkpoint {
        self.fusion.checkpoint()
    }

    /// Writes a checkpoint of the fused state to `path` atomically.
    pub fn checkpoint_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.checkpoint().save_atomic(path)
    }

    /// Restores fused state from a checkpoint file written by
    /// [`Aggregator::checkpoint_to`] (or the background checkpointer).
    pub fn restore_from_file(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        let ckpt = Checkpoint::load(path)?;
        self.fusion.restore_from(&ckpt);
        Ok(())
    }

    /// Spawns a thread that checkpoints the fused state to `path`
    /// every `every`, plus once on shutdown. Each write is atomic
    /// (temp + rename), so a crash mid-write leaves the previous
    /// checkpoint intact.
    pub fn spawn_checkpointer(
        &self,
        path: std::path::PathBuf,
        every: Duration,
    ) -> std::thread::JoinHandle<()> {
        let fusion = Arc::clone(&self.fusion);
        let running = Arc::clone(&self.running);
        std::thread::spawn(move || {
            let tick = Duration::from_millis(50).min(every.max(Duration::from_millis(1)));
            let mut since = Duration::ZERO;
            while running.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                since += tick;
                if since >= every {
                    since = Duration::ZERO;
                    let _ = fusion.checkpoint().save_atomic(&path);
                }
            }
            // A final checkpoint on orderly shutdown, so a clean stop
            // restarts just as warm as a crash mid-cadence.
            let _ = fusion.checkpoint().save_atomic(&path);
        })
    }

    /// Spawns a reader thread that drains `transport` into the fused
    /// state until the peer closes, the decoder poisons, the sentinel
    /// orders the connection dropped, or [`Aggregator::stop`] is
    /// called. Join the handle to know the connection fully drained.
    pub fn spawn_connection(
        &self,
        mut transport: Box<dyn Transport>,
    ) -> std::thread::JoinHandle<()> {
        let fusion = Arc::clone(&self.fusion);
        let running = Arc::clone(&self.running);
        let capture = self.capture.clone();
        let conn_id = self.next_conn.fetch_add(1, Ordering::SeqCst);
        let timeout = Duration::from_millis(self.cfg.recv_timeout_ms.max(1));
        let budget = self.cfg.inflight_budget.max(1);
        std::thread::spawn(move || {
            let clock = fusion.clock_handle();
            let mut decoder = FrameDecoder::new();
            while running.load(Ordering::SeqCst) {
                match transport.recv(timeout) {
                    Ok(chunk) => {
                        let arrival = clock.now();
                        decoder.push(&chunk);
                        // Decode the whole chunk before fusing,
                        // shedding past the inflight budget so a
                        // firehosing peer drops its own oldest
                        // traffic instead of starving others.
                        let mut batch: VecDeque<Message> = VecDeque::new();
                        loop {
                            let step = match &capture {
                                Some(cap) => decoder.next_message_and_frame().map(|opt| {
                                    opt.map(|(msg, frame)| {
                                        // Best-effort: a full capture
                                        // disk must not down the fleet.
                                        let _ = cap.lock().record(arrival, conn_id, &frame);
                                        msg
                                    })
                                }),
                                None => decoder.next_message(),
                            };
                            match step {
                                Ok(Some(msg)) => {
                                    if batch.len() >= budget {
                                        batch.pop_front();
                                        obs::incr("fleet.agg.inflight_dropped", 1);
                                    }
                                    batch.push_back(msg);
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    // Framing is unrecoverable
                                    // mid-stream: drop the connection
                                    // and let the agent redial.
                                    obs::incr("fleet.agg.decode_errors", 1);
                                    transport.close();
                                    return;
                                }
                            }
                        }
                        for msg in batch {
                            let verdict = fusion.ingest_from(conn_id, msg);
                            if verdict.drop_connection {
                                transport.close();
                                return;
                            }
                        }
                    }
                    Err(TransportError::TimedOut) => continue,
                    Err(_) => break,
                }
            }
            transport.close();
        })
    }

    /// Spawns the readiness-driven reactor: one pump thread parking
    /// on transport readiness plus a worker pool folding decoded
    /// messages into the fusion shards. Feed it sockets with
    /// [`Aggregator::add_connection`]; join the returned handle after
    /// [`Aggregator::stop`] to know every accepted message was fused.
    ///
    /// At most one reactor may run per aggregator.
    pub fn spawn_reactor(&self) -> ReactorHandle {
        assert!(
            !self.reactor_live.swap(true, Ordering::SeqCst),
            "reactor already running"
        );
        reactor::spawn(reactor::ReactorContext {
            fusion: Arc::clone(&self.fusion),
            running: Arc::clone(&self.running),
            intake: Arc::clone(&self.intake),
            capture: self.capture.clone(),
            cfg: ReactorConfig {
                workers: self.cfg.reactor_workers,
                tick: Duration::from_millis(self.cfg.recv_timeout_ms.max(1)),
                inflight_budget: self.cfg.inflight_budget.max(1),
                publish_every: Some(Duration::from_millis(250)),
            },
        })
    }

    /// Hands a connection to the running reactor (spawn it first) and
    /// returns the assigned connection id. The transport should
    /// already be non-blocking where that applies; the pump only ever
    /// issues zero-timeout reads.
    pub fn add_connection(&self, transport: Box<dyn Transport>) -> u32 {
        let conn_id = self.next_conn.fetch_add(1, Ordering::SeqCst);
        self.intake.push(conn_id, transport);
        conn_id
    }

    /// Serves a TCP listener until [`Aggregator::stop`]: parks on
    /// listener readiness (`poll(2)` where available — no busy spin,
    /// near-zero idle CPU) and routes accepted sockets into the
    /// reactor when one is running, else to a reader thread each.
    pub fn serve_tcp(&self, listener: std::net::TcpListener) -> std::thread::JoinHandle<()> {
        let running = Arc::clone(&self.running);
        let reactor_live = Arc::clone(&self.reactor_live);
        let this = Aggregator {
            fusion: Arc::clone(&self.fusion),
            cfg: self.cfg,
            running: Arc::clone(&self.running),
            capture: self.capture.clone(),
            next_conn: Arc::clone(&self.next_conn),
            intake: Arc::clone(&self.intake),
            reactor_live: Arc::clone(&self.reactor_live),
        };
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let tick = Duration::from_millis(self.cfg.recv_timeout_ms.max(1));
        std::thread::spawn(move || {
            while running.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if reactor_live.load(Ordering::SeqCst) {
                            stream.set_nonblocking(true).ok();
                            if let Ok(mut t) = crate::transport::TcpTransport::new(stream) {
                                let _ = t.set_nonblocking(true);
                                this.add_connection(Box::new(t));
                            }
                        } else {
                            stream.set_nonblocking(false).ok();
                            if let Ok(t) = crate::transport::TcpTransport::new(stream) {
                                this.spawn_connection(Box::new(t));
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // Park on readiness instead of hot-looping:
                        // the kernel wakes us for the next SYN, and
                        // the tick bounds how fast we notice `stop`.
                        #[cfg(unix)]
                        {
                            use std::os::unix::io::AsRawFd;
                            let mut fds = [crate::sys::PollFd {
                                fd: listener.as_raw_fd(),
                                events: crate::sys::POLLIN,
                                revents: 0,
                            }];
                            crate::sys::poll_fds(&mut fds, tick);
                        }
                        #[cfg(not(unix))]
                        std::thread::sleep(tick);
                    }
                    Err(_) => break,
                }
            }
        })
    }

    /// Appends the current snapshot as one JSONL line.
    pub fn export_jsonl(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        writeln!(out, "{}", self.snapshot().to_json())
    }

    /// The current campus health scoreboard.
    pub fn health(&self) -> FleetHealth {
        self.fusion.health()
    }

    /// Appends the current scoreboard as one JSONL line.
    pub fn export_ops_jsonl(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        writeln!(out, "{}", self.health().to_json())
    }

    /// Writes the retained fleet event journal as JSONL.
    pub fn export_events_jsonl(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        write!(out, "{}", self.fusion.events_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{ClusterObservation, Heartbeat};
    use counting::{EpsRung, PrecisionRung};
    use geom::Point3;
    use obs::ManualClock;
    use world::corridor_layout;

    fn report(pole_id: u32, seq: u64, clusters: &[(f64, f64)]) -> Message {
        Message::Report(PoleReport {
            pole_id,
            seq,
            timestamp_ms: seq * 100,
            count: u32::try_from(clusters.len()).unwrap_or(u32::MAX),
            health: HealthState::Healthy,
            eps_rung: EpsRung::Adaptive,
            precision: PrecisionRung::Fp32,
            held: false,
            stale_frames: 0,
            age_ms: 0.0,
            pole_temp_c: Some(35.0),
            capture_ms: Some(seq as f64 * 100.0),
            clusters: clusters
                .iter()
                .map(|&(x, y)| ClusterObservation {
                    centroid: Point3::new(x, y, -2.0),
                    points: 80,
                    confidence: 0.8,
                })
                .collect(),
        })
    }

    fn held_report(pole_id: u32, seq: u64, count: u32) -> Message {
        Message::Report(PoleReport {
            pole_id,
            seq,
            timestamp_ms: seq * 100,
            count,
            health: HealthState::Degraded,
            eps_rung: EpsRung::Cached,
            precision: PrecisionRung::Fp32,
            held: true,
            stale_frames: 1,
            age_ms: 100.0,
            pole_temp_c: None,
            capture_ms: None,
            clusters: Vec::new(),
        })
    }

    fn core(clock: &ManualClock) -> FusionCore {
        let registry = PoleRegistry::from_poses(corridor_layout(3, 15.0));
        FusionCore::new(registry, WalkwayConfig::default(), FusionConfig::default())
            .with_clock(clock.handle())
    }

    #[test]
    fn overlap_sightings_fuse_into_one_person() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        // Pole 0 sees someone at local x=28 (campus 28); pole 1 (at
        // campus x=15) sees the same person at local x=13.2 — 20 cm
        // of disagreement, well inside the dedup radius.
        core.ingest(report(0, 1, &[(28.0, 0.0)]));
        core.ingest(report(1, 1, &[(13.2, 0.0)]));
        let snap = core.snapshot();
        assert_eq!(snap.occupancy, 1, "one person, not two");
        assert_eq!(snap.people.len(), 1);
        assert_eq!(snap.people[0].observers, vec![0, 1]);
        assert_eq!(snap.unmapped, 0);
    }

    #[test]
    fn distinct_people_stay_distinct() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        core.ingest(report(0, 1, &[(14.0, 0.0), (20.0, 1.5)]));
        core.ingest(report(2, 1, &[(18.0, -1.0)])); // campus x = 48
        let snap = core.snapshot();
        assert_eq!(snap.occupancy, 3);
        assert_eq!(snap.zones.iter().map(|z| z.count).sum::<u32>(), 3);
    }

    #[test]
    fn last_seq_wins_regardless_of_arrival_order() {
        let clock = ManualClock::new();
        let mut forward = core(&clock);
        forward.ingest(report(0, 1, &[(14.0, 0.0)]));
        forward.ingest(report(0, 2, &[(15.0, 0.0), (20.0, 0.0)]));
        let mut reversed = core(&clock);
        reversed.ingest(report(0, 2, &[(15.0, 0.0), (20.0, 0.0)]));
        reversed.ingest(report(0, 1, &[(14.0, 0.0)]));
        let a = forward.snapshot();
        let b = reversed.snapshot();
        assert_eq!(a, b, "snapshots must not depend on arrival order");
        assert_eq!(a.occupancy, 2);
        assert_eq!(reversed.stats().stale_discards, 1);
    }

    #[test]
    fn liveness_walks_live_stale_dead_on_the_clock() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        core.ingest(report(0, 1, &[(14.0, 0.0)]));
        assert_eq!(core.snapshot().live, 1);
        clock.advance_ms(2_500); // past stale_after (2 s)
        let snap = core.snapshot();
        assert_eq!(snap.stale, 1);
        assert_eq!(snap.occupancy, 1, "stale data still counts");
        clock.advance_ms(3_000); // past dead_after (5 s)
        let snap = core.snapshot();
        assert_eq!(snap.dead, 1);
        assert_eq!(snap.occupancy, 0, "dead poles leave the count");
        // A heartbeat resurrects it without a new report.
        core.ingest(Message::Heartbeat(Heartbeat {
            pole_id: 0,
            seq: 1,
            timestamp_ms: 0,
        }));
        let snap = core.snapshot();
        assert_eq!(snap.live, 1);
        assert_eq!(snap.occupancy, 1);
    }

    #[test]
    fn bye_kills_immediately_and_hello_revives() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        core.ingest(report(1, 1, &[(14.0, 0.0)]));
        core.ingest(Message::Bye { pole_id: 1 });
        let snap = core.snapshot();
        assert_eq!(snap.dead, 1);
        assert_eq!(snap.occupancy, 0);
        core.ingest(Message::Hello { pole_id: 1 });
        assert_eq!(core.snapshot().live, 1);
    }

    #[test]
    fn held_reports_count_as_unmapped() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        core.ingest(held_report(0, 3, 2));
        let snap = core.snapshot();
        assert_eq!(snap.unmapped, 2);
        assert_eq!(snap.occupancy, 2);
        assert!(snap.people.is_empty());
        assert!(snap.poles[0].held);
    }

    #[test]
    fn unregistered_poles_contribute_scalar_counts() {
        let clock = ManualClock::new();
        let mut core = core(&clock); // registry has poles 0..3
        core.ingest(report(99, 1, &[(14.0, 0.0)]));
        let snap = core.snapshot();
        assert_eq!(snap.unmapped, 1, "no pose: cannot place, still counted");
        assert!(snap.people.is_empty());
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        core.ingest(report(0, 1, &[(14.0, 0.0)]));
        let json = core.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"occupancy\":1"));
        assert!(json.contains("\"liveness\":\"live\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn aggregator_threads_fold_into_one_core() {
        use crate::transport::loopback_pair;
        use crate::transport::LoopbackConfig;
        use crate::wire::encode;
        let clock = ManualClock::new();
        let agg = Aggregator::with_core(core(&clock), AggregatorConfig::default());
        let (mut c1, s1) = loopback_pair(LoopbackConfig::reliable());
        let (mut c2, s2) = loopback_pair(LoopbackConfig::reliable());
        let h1 = agg.spawn_connection(Box::new(s1));
        let h2 = agg.spawn_connection(Box::new(s2));
        c1.send(&encode(&report(0, 1, &[(14.0, 0.0)]))).unwrap();
        c2.send(&encode(&report(1, 1, &[(20.0, 0.0)]))).unwrap();
        c1.close();
        c2.close();
        drop(c1);
        drop(c2);
        h1.join().unwrap();
        h2.join().unwrap();
        let snap = agg.snapshot();
        assert_eq!(snap.occupancy, 2);
        assert_eq!(snap.poles.len(), 2);
    }

    #[test]
    fn ingest_latency_is_measured_from_the_capture_stamp() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        clock.advance_ms(150);
        // Captured at 100 ms on the pole clock, fused at 150 ms here:
        // 50 ms of end-to-end latency.
        core.ingest(report(0, 1, &[(14.0, 0.0)]));
        clock.advance_ms(80);
        // Captured at 200, fused at 230: 30 ms.
        core.ingest(report(0, 2, &[(14.5, 0.0)]));
        let health = core.health();
        assert_eq!(health.poles.len(), 1);
        let ingest = &health.poles[0].ingest;
        assert_eq!(ingest.count, 2);
        assert_eq!(ingest.min_ms, 30.0);
        assert_eq!(ingest.max_ms, 50.0);
        assert_eq!(health.campus_ingest.count, 2, "campus merges the pole");
        // A held report without trace context adds nothing.
        core.ingest(held_report(0, 3, 1));
        assert_eq!(core.health().campus_ingest.count, 2);
    }

    #[test]
    fn telemetry_frames_merge_into_the_scoreboard() {
        use crate::wire::TelemetryFrame;
        let clock = ManualClock::new();
        let mut core = core(&clock);
        let reg = obs::Registry::new();
        reg.incr("pole.frames", 4);
        reg.set_gauge("pole.temp_c", 41.5);
        reg.observe_ms("pole.frame", 2.0);
        let first = reg.telemetry();
        core.ingest(Message::Telemetry(TelemetryFrame {
            pole_id: 2,
            seq: 1,
            timestamp_ms: 100,
            window_ms: 500.0,
            snapshot: first.clone(),
        }));
        reg.incr("pole.frames", 3);
        reg.observe_ms("pole.frame", 4.0);
        core.ingest(Message::Telemetry(TelemetryFrame {
            pole_id: 2,
            seq: 2,
            timestamp_ms: 600,
            window_ms: 500.0,
            snapshot: reg.telemetry().delta_since(&first),
        }));
        assert_eq!(core.stats().telemetry, 2);
        let health = core.health();
        let pole = &health.poles[0];
        assert_eq!(pole.pole_id, 2);
        assert_eq!(pole.telemetry_frames, 2);
        assert_eq!(pole.telemetry.counter("pole.frames"), 7, "windows re-sum");
        assert_eq!(pole.telemetry.gauge("pole.temp_c"), Some(41.5));
        assert_eq!(
            pole.telemetry.histogram("pole.frame").map(|h| h.count),
            Some(2)
        );
        assert_eq!(
            health.campus_telemetry.counter("pole.frames"),
            7,
            "campus merge sees the same totals"
        );
        // Telemetry keeps the pole alive like any other traffic.
        assert_eq!(health.poles[0].liveness, Liveness::Live);
    }

    #[test]
    fn journal_records_the_life_of_a_pole() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        core.ingest(Message::Hello { pole_id: 0 });
        core.ingest(report(0, 1, &[(14.0, 0.0)]));
        // Supervisor degrades and drops a ladder rung.
        core.ingest(Message::Report(PoleReport {
            pole_id: 0,
            seq: 2,
            timestamp_ms: 200,
            count: 1,
            health: HealthState::Degraded,
            eps_rung: EpsRung::Cached,
            precision: PrecisionRung::Fp32,
            held: false,
            stale_frames: 0,
            age_ms: 0.0,
            pole_temp_c: Some(44.0),
            capture_ms: None,
            clusters: Vec::new(),
        }));
        // Silence past dead, then a redial resurrects it.
        clock.advance_ms(6_000);
        core.ingest(Message::Hello { pole_id: 0 });
        core.ingest(Message::Bye { pole_id: 0 });
        let kinds: Vec<&'static str> = core.journal().events().map(|e| e.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec![
                "connected",
                "health_changed",
                "ladder_changed",
                "liveness_changed", // live -> dead, noticed on redial
                "reconnected",
                "liveness_changed", // dead -> live resurrection
                "bye",
                "liveness_changed", // live -> dead from the Bye
            ]
        );
        let FleetEventKind::LadderChanged { from, to } = &core
            .journal()
            .events()
            .find(|e| e.kind.as_str() == "ladder_changed")
            .unwrap()
            .kind
        else {
            panic!("ladder event carries labels");
        };
        assert_eq!(from, "adaptive/fp32");
        assert_eq!(to, "cached/fp32");
    }

    #[test]
    fn health_sweep_journals_passive_decay() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        core.ingest(report(0, 1, &[(14.0, 0.0)]));
        clock.advance_ms(2_500);
        let health = core.health();
        assert_eq!(health.poles[0].liveness, Liveness::Stale);
        assert!(health.events.iter().any(|e| matches!(
            e.kind,
            FleetEventKind::LivenessChanged {
                from: Liveness::Live,
                to: Liveness::Stale
            }
        )));
        clock.advance_ms(3_000);
        let health = core.health();
        assert_eq!(health.poles[0].liveness, Liveness::Dead);
        assert_eq!(health.events_total, 2, "stale then dead, no repeats");
    }

    #[test]
    fn p95_silence_tracks_the_quietest_pole() {
        let clock = ManualClock::new();
        let mut core = core(&clock);
        core.ingest(report(0, 1, &[(14.0, 0.0)]));
        clock.advance_ms(400);
        core.ingest(report(1, 1, &[(14.0, 0.0)]));
        clock.advance_ms(100);
        let snap = core.snapshot();
        assert_eq!(snap.p95_silence_ms, 500.0, "oldest silence dominates p95");
    }

    #[test]
    fn p95_silence_survives_nan_without_panicking() {
        // Regression: the sweep sorted with partial_cmp().expect(), so
        // a single NaN silence panicked the snapshot path for the
        // whole campus. Under total_cmp it sorts last, deterministically.
        let mut adversarial = vec![f64::NAN, 250.0, -0.0, f64::INFINITY, 100.0];
        let p95 = p95_silence(&mut adversarial);
        assert!(p95.is_nan(), "NaN owns the tail slot under total_cmp");

        // With enough honest poles the percentile stays finite even
        // when one silence is poisoned.
        let mut mostly_honest: Vec<f64> = (0..99).map(f64::from).collect();
        mostly_honest.push(f64::NAN);
        assert_eq!(p95_silence(&mut mostly_honest), 94.0);

        assert_eq!(p95_silence(&mut []), 0.0);
    }

    #[test]
    fn snapshot_assembly_tolerates_adversarial_silences() {
        let snap = assemble_snapshot(
            &FusionConfig::default(),
            Duration::from_secs(1),
            vec![ShardGather {
                poles: Vec::new(),
                observations: Vec::new(),
                unmapped: 0,
                live: 0,
                stale: 0,
                dead: 0,
                quarantined: 0,
                silences: vec![100.0, f64::NAN],
            }],
        );
        assert!(snap.p95_silence_ms.is_nan(), "poisoned but not panicked");
        assert_eq!(snap.occupancy, 0);
    }

    #[test]
    fn checkpoint_saturates_century_scale_silences() {
        let clock = ManualClock::new();
        let mut skewed = core(&clock);
        skewed.ingest(report(0, 1, &[(14.0, 0.0)]));
        // Skew the clock just past 2^64 nanoseconds (~584.5 years).
        // The old `as_nanos() as u64` truncation wrapped this into a
        // ~0.3 s silence — a pole dead for centuries checkpointed as
        // freshly heard.
        clock.set(Duration::new(18_446_744_074, 0));
        let ckpt = skewed.checkpoint();
        assert_eq!(
            ckpt.slots[0].silence_nanos,
            u64::MAX,
            "century-scale silences saturate instead of wrapping"
        );

        // Round-trip: restored against a sane clock, the pole must
        // come back Dead with no people on the board.
        let clock2 = ManualClock::new();
        let mut restored = core(&clock2);
        clock2.advance_ms(10_000);
        restored.restore_from(&ckpt);
        let snap = restored.snapshot();
        assert_eq!(snap.dead, 1, "restored pole is dead, not live");
        assert_eq!(snap.occupancy, 0);
    }

    #[test]
    fn occupancy_clamps_at_the_u32_boundary() {
        // The sentinel's plausibility ceiling would quarantine counts
        // this hostile long before the sum; switch it off so the
        // arithmetic itself is on trial.
        let hostile_core = |clock: &ManualClock| {
            let registry = PoleRegistry::from_poses(corridor_layout(3, 15.0));
            let mut cfg = FusionConfig::default();
            cfg.sentinel.enabled = false;
            FusionCore::new(registry, WalkwayConfig::default(), cfg).with_clock(clock.handle())
        };

        // One mapped person plus a held count at the top of u32: the
        // old `people.len() as u32 + unmapped` wrapped past zero.
        let clock = ManualClock::new();
        let mut core = hostile_core(&clock);
        core.ingest(report(0, 1, &[(14.0, 0.0)]));
        core.ingest(held_report(1, 1, u32::MAX));
        let snap = core.snapshot();
        assert_eq!(snap.unmapped, u32::MAX);
        assert_eq!(snap.occupancy, u32::MAX, "saturates instead of wrapping");

        // Two hostile held counts must not wrap the unmapped sum either.
        let clock = ManualClock::new();
        let mut core = hostile_core(&clock);
        core.ingest(held_report(0, 1, u32::MAX));
        core.ingest(held_report(1, 1, 7));
        assert_eq!(core.snapshot().occupancy, u32::MAX);
    }

    #[test]
    fn snapshot_cell_publishes_monotonic_epochs() {
        let cell = SnapshotCell::new();
        assert_eq!(cell.epoch(), 0);
        assert_eq!(
            cell.read().occupancy,
            0,
            "empty snapshot before first publish"
        );
        for i in 1..=5u32 {
            let snap = CampusSnapshot {
                occupancy: i,
                ..CampusSnapshot::default()
            };
            cell.publish(Arc::new(snap));
            assert_eq!(cell.epoch(), u64::from(i));
            assert_eq!(cell.read().occupancy, i, "read returns the latest publish");
        }
    }

    #[test]
    fn sharded_fusion_matches_a_single_core_bit_for_bit() {
        let n: u32 = 8;
        let clock = ManualClock::new();
        let mk_registry = || PoleRegistry::from_poses(corridor_layout(n as usize, 15.0));
        let mut single = FusionCore::new(
            mk_registry(),
            WalkwayConfig::default(),
            FusionConfig::default(),
        )
        .with_clock(clock.handle());
        let sharded = ShardedFusion::new(
            mk_registry(),
            WalkwayConfig::default(),
            FusionConfig::default(),
            4,
            clock.handle(),
        );
        assert_eq!(sharded.shard_count(), 4);
        assert_ne!(
            sharded.shard_of(1),
            sharded.shard_of(2),
            "adjacent poles 1 and 2 must straddle a shard seam for this test to bite"
        );

        // Every pole sees its own person; adjacent poles double-sight
        // a seam person standing between them (campus x = 15i + 28),
        // so people straddle every shard boundary.
        for i in 0..n {
            let mut clusters = vec![(14.0, 0.0)];
            if i + 1 < n {
                clusters.push((28.0, 0.7));
            }
            if i > 0 {
                clusters.push((13.0, 0.7));
            }
            let msg = report(i, 1, &clusters);
            single.ingest(msg.clone());
            sharded.ingest(msg);
        }
        clock.advance_ms(50);
        let a = single.snapshot();
        let b = sharded.snapshot();
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "sharded snapshot must be bit-identical to the single core"
        );
        assert_eq!(b.occupancy, 2 * n - 1, "n own people + n-1 seam people");

        // The snapshot was also published through the lock-free cell.
        assert_eq!(sharded.published().to_json(), b.to_json());
        assert!(sharded.publish_epoch() >= 1);
    }

    #[test]
    fn sharded_checkpoint_round_trips_through_restore() {
        let clock = ManualClock::new();
        let mk_registry = || PoleRegistry::from_poses(corridor_layout(6, 15.0));
        let sharded = ShardedFusion::new(
            mk_registry(),
            WalkwayConfig::default(),
            FusionConfig::default(),
            3,
            clock.handle(),
        );
        for i in 0..6u32 {
            sharded.ingest(report(i, 1, &[(14.0, 0.0)]));
        }
        clock.advance_ms(100);
        let before = sharded.snapshot();
        let ckpt = sharded.checkpoint();

        let clock2 = ManualClock::new();
        clock2.advance_ms(100);
        let restored = ShardedFusion::new(
            mk_registry(),
            WalkwayConfig::default(),
            FusionConfig::default(),
            3,
            clock2.handle(),
        );
        restored.restore_from(&ckpt);
        let after = restored.snapshot();
        assert_eq!(before.occupancy, after.occupancy);
        assert_eq!(before.people, after.people);
        assert_eq!(
            sharded.stats().reports,
            restored.stats().reports,
            "campus stats survive the shard split exactly once"
        );
    }

    #[test]
    fn to_json_survives_non_finite_derived_rates() {
        // Regression: `format!("{v:.3}")` happily prints `NaN` and
        // `inf`, which are not JSON. Before `json_num` this test
        // failed — a poisoned silence percentile corrupted the export
        // stream and every HTTP reader downstream of it.
        let snap = CampusSnapshot {
            at_ms: f64::NAN,
            p95_silence_ms: f64::INFINITY,
            poles: vec![PoleStatus {
                pole_id: 7,
                liveness: Liveness::Live,
                health: None,
                count: 1,
                seq: 1,
                silence_ms: f64::NAN,
                held: false,
                trust: TrustState::Trusted,
            }],
            people: vec![FusedPerson {
                x: f64::NEG_INFINITY,
                y: 0.0,
                confidence: f64::NAN,
                observers: vec![7],
            }],
            live: 1,
            occupancy: 1,
            ..CampusSnapshot::default()
        };
        let json = snap.to_json();
        assert!(!json.contains("NaN"), "bare NaN is not JSON: {json}");
        assert!(!json.contains("inf"), "bare inf is not JSON: {json}");
        assert!(json.contains("\"at_ms\":null"));
        assert!(json.contains("\"p95_silence_ms\":null"));
        assert!(json.contains("\"silence_ms\":null"));
        assert!(json.contains("\"x\":null"));
        assert!(json.contains("\"confidence\":null"));
    }

    #[test]
    fn empty_fleet_snapshot_is_wellformed_jsonl() {
        // Degenerate input: an aggregator that has never heard a pole
        // must still export a valid single-line JSON record.
        let clock = ManualClock::new();
        let core = core(&clock);
        let snap = core.snapshot();
        assert_eq!(snap.occupancy, 0);
        assert_eq!(snap.live + snap.stale + snap.dead, 0);
        let json = snap.to_json();
        assert!(!json.contains('\n'), "JSONL is one line");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"people\":["));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn all_quarantined_campus_serves_zero_not_garbage() {
        // Degenerate input: every pole on the sentinel's quarantine
        // rung. Counts must leave the board (not wrap, not linger)
        // and the export must stay well-formed.
        let clock = ManualClock::new();
        let mut core = core(&clock);
        for pole in 0..3u32 {
            // Three implausible counts score 6.0: past quarantine
            // (4.0), short of ban (16.0).
            for seq in 1..=3u64 {
                core.ingest(held_report(pole, seq, u32::MAX));
            }
        }
        let snap = core.snapshot();
        assert_eq!(snap.quarantined, 3, "all poles quarantined");
        assert_eq!(snap.occupancy, 0, "quarantined counts leave the board");
        assert!(snap.people.is_empty());
        assert_eq!(snap.live, 3, "quarantine is not death — liveness holds");
        let json = snap.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"quarantined\":3"));
    }

    #[test]
    fn read_versioned_pairs_epoch_with_its_snapshot() {
        let cell = SnapshotCell::new();
        let (epoch, snap) = cell.read_versioned();
        assert_eq!(epoch, 0, "epoch 0 means never published");
        assert_eq!(snap.occupancy, 0, "empty snapshot before first publish");
        for i in 1..=4u32 {
            cell.publish(Arc::new(CampusSnapshot {
                occupancy: i,
                ..CampusSnapshot::default()
            }));
            let (epoch, snap) = cell.read_versioned();
            assert_eq!(epoch, u64::from(i));
            assert_eq!(
                snap.occupancy, i,
                "epoch and snapshot must come from the same publish"
            );
        }
    }

    #[test]
    fn publish_hooks_fire_once_per_epoch_in_order() {
        use std::sync::Mutex as StdMutex;
        #[derive(Default)]
        struct Recorder(StdMutex<Vec<u64>>);
        impl PublishHook for Recorder {
            fn on_publish(&self, epoch: u64) {
                self.0.lock().unwrap().push(epoch);
            }
        }
        let cell = SnapshotCell::new();
        let rec = Arc::new(Recorder::default());
        cell.add_hook(Arc::clone(&rec) as Arc<dyn PublishHook>);
        for _ in 0..3 {
            cell.publish(Arc::new(CampusSnapshot::default()));
        }
        assert_eq!(*rec.0.lock().unwrap(), vec![1, 2, 3]);
    }
}
