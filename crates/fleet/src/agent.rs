//! The pole side of the fleet: a counting loop with an uplink.
//!
//! [`PoleAgent`] wraps a [`SupervisedCounter`] and turns every stepped
//! frame into a [`PoleReport`] on the wire. The uplink is engineered
//! for the realities of a pole in the weather:
//!
//! - **bounded drop-oldest queue** — when the link is down, encoded
//!   frames accumulate up to [`AgentConfig::queue_cap`], then the
//!   *oldest* is discarded. Fresh occupancy beats a complete history;
//!   the aggregator's fusion is last-sequence-wins anyway.
//! - **heartbeats** — if nothing has been enqueued for
//!   [`AgentConfig::heartbeat_every_ms`], a heartbeat goes out so the
//!   aggregator can tell "quiet pole" from "dead pole".
//! - **jittered exponential backoff** — redial delays double from
//!   `backoff_base_ms` to `backoff_max_ms` with seeded half-to-full
//!   jitter, so a rebooted aggregator is not met by a synchronized
//!   thundering herd of poles.
//! - **piggybacked telemetry** — when
//!   [`AgentConfig::telemetry_every_frames`] is non-zero the agent
//!   keeps a *scoped* [`obs::Registry`] of pole-side series (frame and
//!   stage latencies, supervisor health/ladder gauges, queue depth)
//!   and ships the delta since the last emission as a
//!   [`Message::Telemetry`] frame — on that frame cadence, and
//!   whenever a heartbeat fires. Telemetry, like heartbeats, flushes
//!   past the batch gate: an ops signal that waits out a batch that
//!   never fills is an ops signal that lies.
//!
//! Time comes from the counter's injected [`obs::Clock`], and backoff
//! is deadline-based (`next_dial_at`) rather than slept, so the whole
//! reconnect dance is deterministic under a [`obs::ManualClock`].
//! Telemetry cadence is frame-counted, not timed, for the same
//! reason.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use counting::{EpsRung, PrecisionRung, SupervisedCount, SupervisedCounter};
use dataset::{ClassLabel, CloudClassifier};
use lidar::PointCloud;
use obs::{Clock, Counter, Gauge, Histogram, Registry, TelemetrySnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::transport::{Connector, Transport};
use crate::wire::{encode, ClusterObservation, Heartbeat, Message, PoleReport, TelemetryFrame};

/// Pole agent tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// This pole's fleet-wide id (must exist in the campus
    /// `world::PoleRegistry` for its clusters to be fused).
    pub pole_id: u32,
    /// Encoded frames the send queue holds before dropping the oldest.
    pub queue_cap: usize,
    /// Enqueued frames per transport flush. `1` streams every frame;
    /// larger values trade latency for fewer, bigger writes.
    pub batch_frames: usize,
    /// Idle gap after which a heartbeat is enqueued, ms.
    pub heartbeat_every_ms: f64,
    /// First redial delay, ms.
    pub backoff_base_ms: f64,
    /// Redial delay ceiling, ms.
    pub backoff_max_ms: f64,
    /// Seed for the backoff jitter draw.
    pub jitter_seed: u64,
    /// Frames between telemetry emissions; `0` disables telemetry
    /// entirely. When enabled, a heartbeat also carries a telemetry
    /// frame regardless of where the frame counter stands. Counted in
    /// frames rather than wall time so the cadence is identical across
    /// agent-thread counts and under a never-advancing manual clock.
    pub telemetry_every_frames: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            pole_id: 0,
            queue_cap: 256,
            batch_frames: 1,
            heartbeat_every_ms: 1_000.0,
            backoff_base_ms: 50.0,
            backoff_max_ms: 5_000.0,
            jitter_seed: 0xA6E27,
            telemetry_every_frames: 0,
        }
    }
}

impl AgentConfig {
    /// A default config for `pole_id` (jitter seed varied per pole so
    /// a fleet never dials in lockstep).
    pub fn for_pole(pole_id: u32) -> Self {
        AgentConfig {
            pole_id,
            jitter_seed: 0xA6E27 ^ u64::from(pole_id),
            ..AgentConfig::default()
        }
    }
}

/// Cumulative agent counters, mirrored on `obs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Reports enqueued (one per stepped frame).
    pub reports: u64,
    /// Heartbeats enqueued.
    pub heartbeats: u64,
    /// Frames evicted by drop-oldest backpressure.
    pub dropped_oldest: u64,
    /// Frames successfully written to a transport.
    pub sent: u64,
    /// Transport writes that failed (each costs the connection).
    pub send_failures: u64,
    /// Dial attempts.
    pub dials: u64,
    /// Dials that failed.
    pub dial_failures: u64,
    /// Successful connections after the first.
    pub reconnects: u64,
    /// Telemetry frames enqueued.
    pub telemetry: u64,
}

/// Pre-resolved handles into the agent's scoped registry. Fetched
/// once at construction so the per-frame record path is a handful of
/// atomic ops, not a string-keyed map lookup per series — on a cheap
/// pipeline those lookups alone were a measurable share of the frame
/// budget.
struct PoleMetrics {
    frames: Arc<Counter>,
    frames_held: Arc<Counter>,
    panics: Arc<Counter>,
    deadline_misses: Arc<Counter>,
    frame: Arc<Histogram>,
    stage_clustering: Arc<Histogram>,
    stage_upsample: Arc<Histogram>,
    stage_projection: Arc<Histogram>,
    stage_classification: Arc<Histogram>,
    health: Arc<Gauge>,
    eps_rung: Arc<Gauge>,
    precision: Arc<Gauge>,
    stale_frames: Arc<Gauge>,
    temp_c: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
}

impl PoleMetrics {
    fn new(reg: &Registry) -> Self {
        PoleMetrics {
            frames: reg.counter("pole.frames"),
            frames_held: reg.counter("pole.frames_held"),
            panics: reg.counter("pole.panics"),
            deadline_misses: reg.counter("pole.deadline_misses"),
            frame: reg.histogram("pole.frame"),
            stage_clustering: reg.histogram("pole.stage.clustering"),
            stage_upsample: reg.histogram("pole.stage.upsample"),
            stage_projection: reg.histogram("pole.stage.projection"),
            stage_classification: reg.histogram("pole.stage.classification"),
            health: reg.gauge("pole.health"),
            eps_rung: reg.gauge("pole.eps_rung"),
            precision: reg.gauge("pole.precision"),
            stale_frames: reg.gauge("pole.stale_frames"),
            temp_c: reg.gauge("pole.temp_c"),
            queue_depth: reg.gauge("pole.queue_depth"),
        }
    }
}

/// A supervised counter with a fleet uplink.
pub struct PoleAgent<C: CloudClassifier, Q: CloudClassifier = C> {
    counter: SupervisedCounter<C, Q>,
    connector: Box<dyn Connector>,
    transport: Option<Box<dyn Transport>>,
    cfg: AgentConfig,
    clock: Arc<dyn Clock>,
    queue: VecDeque<Vec<u8>>,
    seq: u64,
    jitter: StdRng,
    backoff_ms: f64,
    next_dial_at: Duration,
    last_enqueue_at: Duration,
    connected_before: bool,
    stats: AgentStats,
    registry: Registry,
    metrics: PoleMetrics,
    telemetry_basis: TelemetrySnapshot,
    last_telemetry_at: Duration,
    frames_since_telemetry: u64,
}

impl<C: CloudClassifier, Q: CloudClassifier> std::fmt::Debug for PoleAgent<C, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoleAgent")
            .field("pole_id", &self.cfg.pole_id)
            .field("connected", &self.transport.is_some())
            .field("queued", &self.queue.len())
            .field("seq", &self.seq)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<C: CloudClassifier, Q: CloudClassifier> PoleAgent<C, Q> {
    /// Wraps `counter` with an uplink dialled through `connector`.
    /// The agent shares the counter's clock, so injecting a
    /// [`obs::ManualClock`] there drives backoff and heartbeat
    /// deadlines too.
    pub fn new(
        counter: SupervisedCounter<C, Q>,
        connector: Box<dyn Connector>,
        cfg: AgentConfig,
    ) -> Self {
        let clock = Arc::clone(counter.clock());
        let now = clock.now();
        let registry = Registry::new();
        let metrics = PoleMetrics::new(&registry);
        PoleAgent {
            counter,
            connector,
            transport: None,
            jitter: StdRng::seed_from_u64(cfg.jitter_seed),
            cfg,
            clock,
            queue: VecDeque::new(),
            seq: 0,
            backoff_ms: 0.0,
            next_dial_at: now,
            last_enqueue_at: now,
            connected_before: false,
            stats: AgentStats::default(),
            registry,
            metrics,
            telemetry_basis: TelemetrySnapshot::default(),
            last_telemetry_at: now,
            frames_since_telemetry: 0,
        }
    }

    /// The wrapped counter.
    pub fn counter(&self) -> &SupervisedCounter<C, Q> {
        &self.counter
    }

    /// Mutable access (e.g. to feed compartment temperatures).
    pub fn counter_mut(&mut self) -> &mut SupervisedCounter<C, Q> {
        &mut self.counter
    }

    /// Cumulative uplink counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// Whether a transport is currently up.
    pub fn is_connected(&self) -> bool {
        self.transport.is_some()
    }

    /// Encoded frames awaiting a flush.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Last report sequence number issued.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The agent's scoped telemetry registry: pole-side series that
    /// never touch the global registry, so fleets of in-process agents
    /// don't smear into one another.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Runs one capture through the supervised counter, enqueues the
    /// report, and flushes the uplink. The capture instant is stamped
    /// *before* counting starts, so the report's trace context covers
    /// the pole-side pipeline as well as the wire.
    pub fn step(&mut self, capture: &PointCloud) -> SupervisedCount {
        let capture_ms = self.clock.now_ms();
        let out = self.counter.step(capture);
        self.enqueue_report(&out, capture_ms);
        self.record_frame(&out);
        self.after_enqueue();
        out
    }

    /// Accounts a frame the sensor never delivered; the held count
    /// still goes on the wire so the campus sees the pole degrade.
    pub fn step_dropped(&mut self) -> SupervisedCount {
        let capture_ms = self.clock.now_ms();
        let out = self.counter.step_dropped();
        self.enqueue_report(&out, capture_ms);
        self.record_frame(&out);
        self.after_enqueue();
        out
    }

    /// Idle maintenance when no capture arrived this cycle: emits a
    /// heartbeat if the link has been quiet and retries the dial if a
    /// backoff deadline has passed.
    pub fn tick(&mut self) {
        self.after_enqueue();
    }

    /// Heartbeat/telemetry check + flush. Heartbeats are liveness
    /// signals and telemetry is the ops plane: neither may sit behind
    /// the batch gate (a stranded heartbeat wrongly marks a
    /// quiet-but-alive pole Stale; stranded telemetry shows the
    /// campus a stale scoreboard), so both force an unbatched flush.
    fn after_enqueue(&mut self) {
        let heartbeat = self.maybe_heartbeat();
        let telemetry = self.maybe_telemetry(heartbeat);
        if heartbeat || telemetry {
            self.flush_all();
        } else {
            self.flush();
        }
    }

    /// Announces an orderly shutdown (best effort) and closes. The
    /// final flush ignores the batch threshold — the transport closes
    /// right after, so anything unsent now is lost.
    pub fn shutdown(&mut self) {
        self.enqueue(Message::Bye {
            pole_id: self.cfg.pole_id,
        });
        self.flush_all();
        if let Some(mut t) = self.transport.take() {
            t.close();
        }
    }

    fn enqueue_report(&mut self, out: &SupervisedCount, capture_ms: f64) {
        self.seq += 1;
        let report = PoleReport {
            pole_id: self.cfg.pole_id,
            seq: self.seq,
            timestamp_ms: self.clock.now_ms() as u64,
            // Clamped, not truncated: a count past u32::MAX (only a
            // poisoned counter produces one) must saturate on the
            // wire, not wrap to a small plausible number.
            count: u32::try_from(out.count).unwrap_or(u32::MAX),
            health: out.health,
            eps_rung: out.eps_rung,
            precision: out.precision,
            held: out.held,
            stale_frames: out.stale_frames,
            age_ms: out.age_ms,
            pole_temp_c: self.counter.pole_temperature(),
            capture_ms: Some(capture_ms.max(0.0)),
            // Only Human clusters go on the wire: `count` excludes
            // benches and bushes, and the aggregator fuses every
            // shipped observation into a person.
            clusters: out
                .clusters
                .iter()
                .filter(|c| c.label == ClassLabel::Human)
                .map(|c| ClusterObservation {
                    centroid: c.centroid,
                    points: c.points.min(u32::MAX as usize) as u32,
                    confidence: support_confidence(c.points),
                })
                .collect(),
        };
        self.stats.reports += 1;
        obs::incr("fleet.agent.reports", 1);
        self.enqueue(Message::Report(report));
    }

    /// Records the frame into the agent's scoped registry: what a
    /// telemetry window will carry to the aggregator. Runs on cached
    /// handles ([`PoleMetrics`]) so the per-frame cost is atomic ops,
    /// not one registry lookup per series.
    fn record_frame(&mut self, out: &SupervisedCount) {
        if self.cfg.telemetry_every_frames == 0 {
            return;
        }
        self.frames_since_telemetry += 1;
        let m = &self.metrics;
        m.frames.add(1);
        if out.held {
            m.frames_held.add(1);
        }
        if out.panicked {
            m.panics.add(1);
        }
        if out.deadline_missed {
            m.deadline_misses.add(1);
        }
        m.frame.observe(out.elapsed_ms);
        if let Some(s) = out.stages {
            m.stage_clustering.observe(s.clustering_ms);
            m.stage_upsample.observe(s.upsample_ms);
            m.stage_projection.observe(s.projection_ms);
            m.stage_classification.observe(s.classification_ms);
        }
        m.health.set(out.health.gauge());
        m.eps_rung.set(match out.eps_rung {
            EpsRung::Adaptive => 0.0,
            EpsRung::Cached => 1.0,
            EpsRung::Fixed => 2.0,
        });
        m.precision.set(match out.precision {
            PrecisionRung::Fp32 => 0.0,
            PrecisionRung::Int8 => 1.0,
        });
        m.stale_frames.set(f64::from(out.stale_frames));
        if let Some(t) = self.counter.pole_temperature() {
            m.temp_c.set(t);
        }
        m.queue_depth.set(self.queue.len() as f64);
    }

    /// Emits a telemetry frame when the cadence (or a piggyback on
    /// `heartbeat`) calls for one; returns whether it did. The frame
    /// carries the scoped registry's delta since the last emission,
    /// so windows tile: summing every window a pole ever shipped
    /// reproduces its lifetime totals exactly.
    fn maybe_telemetry(&mut self, heartbeat: bool) -> bool {
        if self.cfg.telemetry_every_frames == 0 {
            return false;
        }
        let due = self.frames_since_telemetry >= self.cfg.telemetry_every_frames;
        if !due && !heartbeat {
            return false;
        }
        let now = self.clock.now();
        let current = self.registry.telemetry();
        let window = current.delta_since(&self.telemetry_basis);
        self.telemetry_basis = current;
        let frame = TelemetryFrame {
            pole_id: self.cfg.pole_id,
            seq: self.seq,
            timestamp_ms: self.clock.now_ms() as u64,
            window_ms: (now.saturating_sub(self.last_telemetry_at)).as_secs_f64() * 1e3,
            snapshot: window,
        };
        self.last_telemetry_at = now;
        self.frames_since_telemetry = 0;
        self.stats.telemetry += 1;
        obs::incr("fleet.agent.telemetry", 1);
        self.enqueue(Message::Telemetry(frame));
        true
    }

    /// Enqueues a heartbeat if the link has been quiet; returns
    /// whether one was enqueued (the caller then flushes unbatched).
    fn maybe_heartbeat(&mut self) -> bool {
        let idle_ms = (self.clock.now().saturating_sub(self.last_enqueue_at)).as_secs_f64() * 1e3;
        if idle_ms < self.cfg.heartbeat_every_ms {
            return false;
        }
        self.stats.heartbeats += 1;
        obs::incr("fleet.agent.heartbeats", 1);
        self.enqueue(Message::Heartbeat(Heartbeat {
            pole_id: self.cfg.pole_id,
            seq: self.seq,
            timestamp_ms: self.clock.now_ms() as u64,
        }));
        true
    }

    fn enqueue(&mut self, msg: Message) {
        if self.queue.len() >= self.cfg.queue_cap.max(1) {
            self.queue.pop_front();
            self.stats.dropped_oldest += 1;
            obs::incr("fleet.agent.dropped_oldest", 1);
        }
        self.queue.push_back(encode(&msg));
        self.last_enqueue_at = self.clock.now();
        obs::set_gauge("fleet.agent.queue_depth", self.queue.len() as f64);
    }

    /// Batched flush: waits for [`AgentConfig::batch_frames`] queued
    /// frames before writing. Report traffic only — heartbeats and
    /// Bye go through [`PoleAgent::flush_all`] so a batch that never
    /// fills cannot strand a liveness signal.
    fn flush(&mut self) {
        if self.queue.len() < self.cfg.batch_frames.max(1) {
            return;
        }
        self.flush_all();
    }

    /// Drains the queue into the transport regardless of the batch
    /// threshold, dialling first if the backoff deadline allows.
    fn flush_all(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        if self.transport.is_none() {
            self.try_dial();
        }
        let Some(transport) = self.transport.as_mut() else {
            return;
        };
        while let Some(frame) = self.queue.front() {
            let frame_len = frame.len() as u64;
            match transport.send(frame) {
                Ok(()) => {
                    self.queue.pop_front();
                    self.stats.sent += 1;
                    obs::incr("fleet.agent.sent", 1);
                    obs::incr("fleet.wire.bytes_sent", frame_len);
                }
                Err(_) => {
                    self.stats.send_failures += 1;
                    obs::incr("fleet.agent.send_failures", 1);
                    self.drop_transport();
                    break;
                }
            }
        }
        obs::set_gauge("fleet.agent.queue_depth", self.queue.len() as f64);
    }

    fn try_dial(&mut self) {
        if self.clock.now() < self.next_dial_at {
            return;
        }
        self.stats.dials += 1;
        obs::incr("fleet.agent.dials", 1);
        match self.connector.connect() {
            Ok(mut transport) => {
                // Announce ourselves before any queued traffic.
                let hello = encode(&Message::Hello {
                    pole_id: self.cfg.pole_id,
                });
                if transport.send(&hello).is_err() {
                    self.stats.dial_failures += 1;
                    self.schedule_backoff();
                    return;
                }
                obs::incr("fleet.wire.bytes_sent", hello.len() as u64);
                if self.connected_before {
                    self.stats.reconnects += 1;
                    obs::incr("fleet.agent.reconnects", 1);
                }
                self.connected_before = true;
                self.backoff_ms = 0.0;
                self.transport = Some(transport);
            }
            Err(_) => {
                self.stats.dial_failures += 1;
                obs::incr("fleet.agent.dial_failures", 1);
                self.schedule_backoff();
            }
        }
    }

    fn drop_transport(&mut self) {
        if let Some(mut t) = self.transport.take() {
            t.close();
        }
        self.schedule_backoff();
    }

    /// Doubles the redial delay (clamped to the ceiling) and draws a
    /// half-to-full jitter factor so fleets don't redial in lockstep.
    fn schedule_backoff(&mut self) {
        self.backoff_ms = if self.backoff_ms <= 0.0 {
            self.cfg.backoff_base_ms
        } else {
            (self.backoff_ms * 2.0).min(self.cfg.backoff_max_ms)
        };
        let jitter = 0.5 + 0.5 * self.jitter.gen::<f64>();
        let wait = Duration::from_secs_f64(self.backoff_ms * jitter / 1e3);
        self.next_dial_at = self.clock.now() + wait;
    }
}

/// Cluster-support stand-in for a detection posterior: a cluster with
/// the ~60-point support of a close-range pedestrian saturates toward
/// 1, a 3-point wisp stays near 0.1. Monotone, bounded in `[0, 1)`.
pub fn support_confidence(points: usize) -> f64 {
    let p = points as f64;
    p / (p + 25.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{loopback_pair, LoopbackConfig, LoopbackHub, TransportError};
    use crate::wire::FrameDecoder;
    use counting::{CounterConfig, CrowdCounter, SupervisorConfig};
    use dataset::ClassLabel;
    use geom::Point3;
    use obs::ManualClock;

    /// Tall clusters are humans.
    struct HeightRule;

    impl CloudClassifier for HeightRule {
        fn classify(&mut self, clouds: &[Vec<Point3>]) -> Vec<ClassLabel> {
            clouds
                .iter()
                .map(|c| {
                    let hi = c.iter().map(|p| p.z).fold(f64::NEG_INFINITY, f64::max);
                    if hi > -1.7 {
                        ClassLabel::Human
                    } else {
                        ClassLabel::Object
                    }
                })
                .collect()
        }

        fn model_name(&self) -> &str {
            "HeightRule"
        }
    }

    fn human_blob(x: f64, y: f64) -> Vec<Point3> {
        (0..120)
            .map(|i| {
                let layer = i / 10;
                let a = (i % 10) as f64 / 10.0 * std::f64::consts::TAU;
                Point3::new(
                    x + 0.12 * a.cos(),
                    y + 0.12 * a.sin(),
                    -2.6 + 1.3 * (layer as f64 / 11.0),
                )
            })
            .collect()
    }

    /// A bench-height column: the footprint and point pitch of a human
    /// blob, but too short for the height rule — classified Object.
    fn bench_blob(x: f64, y: f64) -> Vec<Point3> {
        (0..40)
            .map(|i| {
                let layer = i / 10;
                let a = (i % 10) as f64 / 10.0 * std::f64::consts::TAU;
                Point3::new(
                    x + 0.12 * a.cos(),
                    y + 0.12 * a.sin(),
                    -2.6 + 1.3 * (layer as f64 / 11.0),
                )
            })
            .collect()
    }

    fn capture(n: usize) -> PointCloud {
        let mut pts = Vec::new();
        for i in 0..n {
            pts.extend(human_blob(14.0 + 3.0 * i as f64, (i % 2) as f64 * 1.5));
        }
        PointCloud::new(pts)
    }

    fn counter(clock: &ManualClock) -> SupervisedCounter<HeightRule> {
        SupervisedCounter::new(
            CrowdCounter::new(HeightRule, CounterConfig::default()),
            SupervisorConfig {
                deadline_ms: 10_000.0,
                ..SupervisorConfig::default()
            },
        )
        .with_clock(clock.handle())
    }

    /// A connector whose link can be severed mid-test.
    struct SwitchedConnector {
        hub: LoopbackHub,
        refuse: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl Connector for SwitchedConnector {
        fn connect(&mut self) -> Result<Box<dyn Transport>, TransportError> {
            if self.refuse.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(TransportError::Closed);
            }
            let mut c = self.hub.connector(LoopbackConfig::reliable());
            c.connect()
        }
    }

    #[test]
    fn agent_streams_hello_then_reports() {
        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut agent = PoleAgent::new(
            counter(&clock),
            Box::new(connector),
            AgentConfig::for_pole(3),
        );
        let out = agent.step(&capture(2));
        assert_eq!(out.count, 2);
        let mut server = hub.accept(Duration::from_millis(50)).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut msgs = Vec::new();
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            decoder.push(&chunk);
            while let Some(m) = decoder.next_message().unwrap() {
                msgs.push(m);
            }
        }
        assert_eq!(msgs[0], Message::Hello { pole_id: 3 });
        match &msgs[1] {
            Message::Report(r) => {
                assert_eq!(r.pole_id, 3);
                assert_eq!(r.seq, 1);
                assert_eq!(r.count, 2);
                assert_eq!(r.clusters.len(), 2);
                assert!(r.clusters.iter().all(|c| c.confidence > 0.5));
            }
            other => panic!("expected a report, got {other:?}"),
        }
    }

    #[test]
    fn object_clusters_stay_off_the_wire_and_out_of_fusion() {
        use crate::aggregator::{FusionConfig, FusionCore};
        use world::{corridor_layout, PoleRegistry, WalkwayConfig};

        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut agent = PoleAgent::new(
            counter(&clock),
            Box::new(connector),
            AgentConfig::for_pole(0),
        );

        // Two walkers plus a bench the classifier labels Object.
        let mut pts = human_blob(14.0, 0.0);
        pts.extend(human_blob(17.0, 1.5));
        pts.extend(bench_blob(20.0, -2.0));
        let out = agent.step(&PointCloud::new(pts));
        assert_eq!(out.count, 2);
        assert!(
            out.clusters.iter().any(|c| c.label == ClassLabel::Object),
            "the pipeline must have seen the bench for this test to bite"
        );

        // Feed everything the pole sent into a fusion core whose
        // registry knows this pole's pose.
        let mut core = FusionCore::new(
            PoleRegistry::from_poses(corridor_layout(1, 15.0)),
            WalkwayConfig::default(),
            FusionConfig::default(),
        )
        .with_clock(clock.handle());
        let mut server = hub.accept(Duration::from_millis(50)).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut report = None;
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            decoder.push(&chunk);
            while let Some(m) = decoder.next_message().unwrap() {
                if let Message::Report(r) = &m {
                    report = Some(r.clone());
                }
                core.ingest(m);
            }
        }
        let report = report.expect("a report reached the wire");
        assert_eq!(report.count, 2);
        assert_eq!(
            report.clusters.len(),
            2,
            "Object clusters must not ship as people"
        );
        let snap = core.snapshot();
        assert_eq!(
            snap.occupancy, report.count,
            "fused occupancy agrees with the pole's own count"
        );
    }

    #[test]
    fn queue_drops_oldest_under_backpressure() {
        let clock = ManualClock::new();
        let refuse = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let connector = SwitchedConnector {
            hub: LoopbackHub::new(),
            refuse: std::sync::Arc::clone(&refuse),
        };
        let mut cfg = AgentConfig::for_pole(1);
        cfg.queue_cap = 4;
        let mut agent = PoleAgent::new(counter(&clock), Box::new(connector), cfg);
        for _ in 0..10 {
            clock.advance_ms(100);
            agent.step(&capture(1));
        }
        assert_eq!(agent.queue_len(), 4, "queue stays bounded");
        assert_eq!(agent.stats().dropped_oldest, 6);
        assert!(!agent.is_connected());
    }

    #[test]
    fn backoff_doubles_with_jitter_and_resets_on_success() {
        let clock = ManualClock::new();
        let refuse = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let hub = LoopbackHub::new();
        // The hub outlives the refusing connector wrapper.
        let connector = SwitchedConnector {
            hub,
            refuse: std::sync::Arc::clone(&refuse),
        };
        let mut cfg = AgentConfig::for_pole(2);
        cfg.backoff_base_ms = 100.0;
        cfg.backoff_max_ms = 800.0;
        let mut agent = PoleAgent::new(counter(&clock), Box::new(connector), cfg);

        agent.step(&capture(1)); // dial fails, backoff armed
        let dials_after_first = agent.stats().dials;
        assert_eq!(dials_after_first, 1);
        agent.step(&capture(1)); // 0 ms later: inside backoff, no dial
        assert_eq!(agent.stats().dials, 1, "backoff suppresses redial");

        // March time forward; each expiry earns exactly one new dial.
        let mut dials = 1;
        for _ in 0..6 {
            clock.advance_ms(1_000); // ≥ max backoff incl. jitter
            agent.tick();
            dials += 1;
            assert_eq!(agent.stats().dials, dials);
        }

        // Open the gate: next expiry connects and drains the queue.
        refuse.store(false, std::sync::atomic::Ordering::SeqCst);
        clock.advance_ms(1_000);
        agent.tick();
        assert!(agent.is_connected());
        assert_eq!(agent.queue_len(), 0, "backlog drains on reconnect");
    }

    #[test]
    fn heartbeats_cover_idle_gaps() {
        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut cfg = AgentConfig::for_pole(9);
        cfg.heartbeat_every_ms = 500.0;
        let mut agent = PoleAgent::new(counter(&clock), Box::new(connector), cfg);
        agent.step(&capture(1));
        // Quiet for 600 ms: a tick must produce a heartbeat.
        clock.advance_ms(600);
        agent.tick();
        assert_eq!(agent.stats().heartbeats, 1);
        let mut server = hub.accept(Duration::from_millis(50)).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut beats = 0;
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            decoder.push(&chunk);
            while let Some(m) = decoder.next_message().unwrap() {
                if let Message::Heartbeat(h) = m {
                    assert_eq!(h.pole_id, 9);
                    assert_eq!(h.seq, 1, "heartbeat carries the last report seq");
                    beats += 1;
                }
            }
        }
        assert_eq!(beats, 1);
    }

    #[test]
    fn shutdown_sends_bye() {
        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut agent = PoleAgent::new(
            counter(&clock),
            Box::new(connector),
            AgentConfig::for_pole(5),
        );
        agent.step(&capture(1));
        agent.shutdown();
        let mut server = hub.accept(Duration::from_millis(50)).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut last = None;
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            decoder.push(&chunk);
            while let Some(m) = decoder.next_message().unwrap() {
                last = Some(m);
            }
        }
        assert_eq!(last, Some(Message::Bye { pole_id: 5 }));
    }

    #[test]
    fn shutdown_flushes_bye_past_the_batch_gate() {
        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut cfg = AgentConfig::for_pole(6);
        cfg.batch_frames = 8;
        let mut agent = PoleAgent::new(counter(&clock), Box::new(connector), cfg);
        agent.step(&capture(1));
        assert_eq!(agent.stats().sent, 0, "one report sits below the gate");
        agent.shutdown();
        let mut server = hub.accept(Duration::from_millis(50)).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut last = None;
        let mut reports = 0;
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            decoder.push(&chunk);
            while let Some(m) = decoder.next_message().unwrap() {
                if matches!(m, Message::Report(_)) {
                    reports += 1;
                }
                last = Some(m);
            }
        }
        assert_eq!(reports, 1, "the queued report goes out with the Bye");
        assert_eq!(last, Some(Message::Bye { pole_id: 6 }));
    }

    #[test]
    fn heartbeats_flush_past_the_batch_gate() {
        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut cfg = AgentConfig::for_pole(7);
        cfg.batch_frames = 8;
        cfg.heartbeat_every_ms = 500.0;
        let mut agent = PoleAgent::new(counter(&clock), Box::new(connector), cfg);
        agent.step(&capture(1));
        assert_eq!(agent.stats().sent, 0, "one report sits below the gate");
        clock.advance_ms(600);
        agent.tick();
        assert_eq!(agent.stats().heartbeats, 1);
        assert!(
            agent.stats().sent >= 2,
            "a heartbeat must drain the queue immediately, not wait out the batch"
        );
        let mut server = hub.accept(Duration::from_millis(50)).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut beats = 0;
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            decoder.push(&chunk);
            while let Some(m) = decoder.next_message().unwrap() {
                if matches!(m, Message::Heartbeat(_)) {
                    beats += 1;
                }
            }
        }
        assert_eq!(beats, 1);
    }

    #[test]
    fn batching_defers_writes_until_the_batch_fills() {
        let clock = ManualClock::new();
        let (client, mut server) = loopback_pair(LoopbackConfig::reliable());
        struct Once(Option<LoopbackClient>);
        use crate::transport::LoopbackClient;
        impl Connector for Once {
            fn connect(&mut self) -> Result<Box<dyn Transport>, TransportError> {
                self.0
                    .take()
                    .map(|c| Box::new(c) as Box<dyn Transport>)
                    .ok_or(TransportError::Closed)
            }
        }
        let mut cfg = AgentConfig::for_pole(4);
        cfg.batch_frames = 3;
        let mut agent = PoleAgent::new(counter(&clock), Box::new(Once(Some(client))), cfg);
        agent.step(&capture(1));
        agent.step(&capture(1));
        assert_eq!(agent.stats().sent, 0, "below batch threshold: no writes");
        agent.step(&capture(1));
        assert!(agent.stats().sent >= 3, "batch flushes all queued frames");
        // Everything decodes on the far side.
        let mut decoder = FrameDecoder::new();
        let mut reports = 0;
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            decoder.push(&chunk);
            while let Some(m) = decoder.next_message().unwrap() {
                if matches!(m, Message::Report(_)) {
                    reports += 1;
                }
            }
        }
        assert_eq!(reports, 3);
    }

    fn drain_messages(hub: &LoopbackHub) -> Vec<Message> {
        let mut server = hub.accept(Duration::from_millis(50)).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut msgs = Vec::new();
        while let Ok(chunk) = server.recv(Duration::from_millis(5)) {
            decoder.push(&chunk);
            while let Some(m) = decoder.next_message().unwrap() {
                msgs.push(m);
            }
        }
        msgs
    }

    #[test]
    fn reports_carry_the_capture_instant() {
        let clock = ManualClock::new();
        clock.advance_ms(1_234);
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut agent = PoleAgent::new(
            counter(&clock),
            Box::new(connector),
            AgentConfig::for_pole(11),
        );
        agent.step(&capture(1));
        let msgs = drain_messages(&hub);
        match &msgs[1] {
            Message::Report(r) => {
                assert_eq!(r.capture_ms, Some(1_234.0), "stamped at step entry");
            }
            other => panic!("expected a report, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_windows_tile_on_the_frame_cadence() {
        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut cfg = AgentConfig::for_pole(8);
        cfg.telemetry_every_frames = 2;
        let mut agent = PoleAgent::new(counter(&clock), Box::new(connector), cfg);
        for _ in 0..6 {
            clock.advance_ms(100);
            agent.step(&capture(1));
        }
        assert_eq!(agent.stats().telemetry, 3);
        let msgs = drain_messages(&hub);
        let frames: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::Telemetry(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 3);
        // Windows are deltas: summed, they reproduce lifetime totals.
        let mut merged = TelemetrySnapshot::default();
        for t in &frames {
            assert_eq!(t.pole_id, 8);
            assert_eq!(t.snapshot.counter("pole.frames"), 2, "per-window delta");
            merged.merge(&t.snapshot);
        }
        assert_eq!(merged.counter("pole.frames"), 6);
        let frame_hist = merged.histogram("pole.frame").expect("frame latencies");
        assert_eq!(frame_hist.count, 6);
        assert!(
            merged.histogram("pole.stage.clustering").is_some(),
            "stage breakdown rides along"
        );
        assert_eq!(merged.gauge("pole.health"), Some(0.0));
    }

    #[test]
    fn telemetry_piggybacks_on_heartbeats_and_skips_the_batch_gate() {
        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut cfg = AgentConfig::for_pole(12);
        cfg.batch_frames = 8;
        cfg.heartbeat_every_ms = 500.0;
        cfg.telemetry_every_frames = 1_000_000; // cadence alone never fires
        let mut agent = PoleAgent::new(counter(&clock), Box::new(connector), cfg);
        agent.step(&capture(1));
        assert_eq!(agent.stats().telemetry, 0, "cadence not yet due");
        clock.advance_ms(600);
        agent.tick();
        assert_eq!(agent.stats().heartbeats, 1);
        assert_eq!(agent.stats().telemetry, 1, "telemetry rides the heartbeat");
        assert_eq!(
            agent.queue_len(),
            0,
            "heartbeat + telemetry drain the queue past the batch gate"
        );
        let msgs = drain_messages(&hub);
        let telemetry: Vec<_> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::Telemetry(t) => Some(t),
                _ => None,
            })
            .collect();
        assert_eq!(telemetry.len(), 1);
        assert_eq!(telemetry[0].seq, 1);
        assert_eq!(telemetry[0].snapshot.counter("pole.frames"), 1);
    }

    #[test]
    fn disabled_telemetry_sends_nothing_extra() {
        let clock = ManualClock::new();
        let hub = LoopbackHub::new();
        let connector = hub.connector(LoopbackConfig::reliable());
        let mut cfg = AgentConfig::for_pole(13);
        cfg.heartbeat_every_ms = 500.0;
        let mut agent = PoleAgent::new(counter(&clock), Box::new(connector), cfg);
        agent.step(&capture(1));
        clock.advance_ms(600);
        agent.tick();
        assert_eq!(agent.stats().telemetry, 0);
        let msgs = drain_messages(&hub);
        assert!(
            msgs.iter().all(|m| !matches!(m, Message::Telemetry(_))),
            "telemetry_every_frames = 0 keeps the wire telemetry-free"
        );
    }

    #[test]
    fn support_confidence_is_monotone_and_bounded() {
        assert_eq!(support_confidence(0), 0.0);
        assert!(support_confidence(10) < support_confidence(100));
        assert!(support_confidence(1_000_000) < 1.0);
    }
}
