//! Byzantine-input hardening: per-pole trust scoring for the
//! aggregator.
//!
//! The wire layer rejects frames that are *malformed* — bad magic,
//! flipped bits, out-of-domain floats. It cannot reject frames that
//! are *wrong*: a compromised or malfunctioning pole can emit frames
//! that are byte-perfect and CRC-valid yet semantically garbage —
//! centroids kilometres off campus, replayed sequence numbers,
//! capture timestamps from the future, telemetry windows spanning
//! hours. Because the aggregator is the single point the whole fleet
//! funnels into, one such pole would poison the campus occupancy view
//! for everyone.
//!
//! The [`Sentinel`] sits between decode and fusion and judges every
//! message against what a sane pole could plausibly send:
//!
//! - cluster centroids must map inside the surveyed campus bounding
//!   box (pole poses × walkway ROI, plus a margin);
//! - report sequence numbers may regress only within a bounded
//!   reorder tolerance — anything further back is a replay;
//! - capture timestamps must sit within a bounded skew of the
//!   aggregator's own clock;
//! - telemetry windows must cover a plausible span;
//! - reported counts must stay below a physical plausibility ceiling.
//!
//! Violations add to a per-pole score; clean messages decay it. The
//! score drives a trust ladder — [`TrustState::Trusted`] →
//! [`TrustState::Suspect`] (fused, but flagged) →
//! [`TrustState::Quarantined`] (frames counted, excluded from fusion)
//! → [`TrustState::Banned`] (connection dropped, reconnects rejected
//! for a cooldown, after which the pole re-enters on probation as
//! Quarantined). Because the score depends only on the pole's own
//! message stream — which arrives in order on its single connection —
//! trust state is deterministic across aggregator thread counts, and
//! campus snapshots stay bit-identical.
//!
//! Pole-id conflicts (a second connection speaking for a pole whose
//! owning connection is still active) are handled *outside* the
//! score: the offending connection accumulates strikes and is
//! dropped, but the pole itself is not penalised — otherwise an
//! impersonator could talk an honest pole into quarantine. See the
//! threat model in DESIGN.md for what this does and does not defend
//! against (the wire has no authentication; a spoofer who announces
//! itself with a Hello after the owner goes silent is
//! indistinguishable from a legitimate redial).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use world::{PolePose, PoleRegistry, WalkwayConfig};

use crate::wire::Message;

/// Where a pole sits on the aggregator's trust ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrustState {
    /// No recent violations; frames fuse normally.
    Trusted,
    /// Violations accumulating; frames still fuse, but the pole is
    /// flagged on the ops surface.
    Suspect,
    /// Score past the quarantine threshold: frames are counted and
    /// keep liveness, but are excluded from fused occupancy.
    Quarantined,
    /// Score past the ban threshold: the connection is dropped and
    /// reconnects are rejected until the cooldown expires.
    Banned,
}

impl TrustState {
    /// Ops-surface label.
    pub fn as_str(&self) -> &'static str {
        match self {
            TrustState::Trusted => "trusted",
            TrustState::Suspect => "suspect",
            TrustState::Quarantined => "quarantined",
            TrustState::Banned => "banned",
        }
    }

    fn byte(self) -> u8 {
        match self {
            TrustState::Trusted => 0,
            TrustState::Suspect => 1,
            TrustState::Quarantined => 2,
            TrustState::Banned => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(TrustState::Trusted),
            1 => Some(TrustState::Suspect),
            2 => Some(TrustState::Quarantined),
            3 => Some(TrustState::Banned),
            _ => None,
        }
    }
}

/// A semantic rule one message broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A cluster centroid mapped outside the campus bounding box.
    OutOfBounds,
    /// The report's seq regressed beyond the reorder tolerance.
    SeqReplay,
    /// The capture timestamp disagrees with the aggregator clock
    /// beyond the allowed skew.
    ClockSkew,
    /// The reported count exceeds the plausibility ceiling.
    ImplausibleCount,
    /// A telemetry window claimed an implausible span.
    TelemetryInsane,
}

impl Violation {
    /// Counter-name label.
    pub fn as_str(&self) -> &'static str {
        match self {
            Violation::OutOfBounds => "out_of_bounds",
            Violation::SeqReplay => "seq_replay",
            Violation::ClockSkew => "clock_skew",
            Violation::ImplausibleCount => "implausible_count",
            Violation::TelemetryInsane => "telemetry_insane",
        }
    }

    /// Score weight: how strongly this violation indicts the pole.
    /// Geometric and count violations can only come from garbage;
    /// skew and telemetry anomalies have benign failure modes (clock
    /// drift, a wedged window timer) and weigh less.
    pub fn weight(&self) -> f64 {
        match self {
            Violation::OutOfBounds | Violation::ImplausibleCount => 2.0,
            Violation::SeqReplay => 1.5,
            Violation::ClockSkew | Violation::TelemetryInsane => 1.0,
        }
    }
}

/// Sentinel tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SentinelConfig {
    /// Master switch; when false every message fuses untouched.
    pub enabled: bool,
    /// Metres added around the surveyed pole ROI union when judging
    /// [`Violation::OutOfBounds`].
    pub bounds_margin_m: f64,
    /// How far a report seq may regress below the last accepted seq
    /// before it reads as a replay (honest links reorder by a frame
    /// or two; replays rewind by thousands).
    pub seq_regression_tolerance: u64,
    /// Largest |now − capture| the ingest trace will believe, ms.
    pub max_clock_skew_ms: f64,
    /// Largest plausible telemetry window span, ms.
    pub max_telemetry_window_ms: f64,
    /// Largest plausible per-pole count.
    pub max_plausible_count: u32,
    /// Multiplier applied to the score on every clean message.
    pub decay: f64,
    /// Score at which a pole turns [`TrustState::Suspect`].
    pub suspect_at: f64,
    /// Score at which a pole turns [`TrustState::Quarantined`].
    pub quarantine_at: f64,
    /// Score at which a pole turns [`TrustState::Banned`].
    pub ban_at: f64,
    /// How long a ban rejects reconnects, ms. After the cooldown the
    /// pole re-enters on probation (Quarantined at the threshold
    /// score) and must earn its way back down.
    pub ban_cooldown_ms: f64,
    /// Silence (ms) after which a pole-id binding may move to a new
    /// connection without reading as a conflict.
    pub conflict_rebind_ms: f64,
    /// Conflict strikes after which the offending *connection* is
    /// dropped.
    pub conflict_drop_after: u32,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            enabled: true,
            bounds_margin_m: 5.0,
            seq_regression_tolerance: 64,
            max_clock_skew_ms: 10_000.0,
            max_telemetry_window_ms: 600_000.0,
            max_plausible_count: 4_096,
            decay: 0.5,
            suspect_at: 2.0,
            quarantine_at: 4.0,
            ban_at: 16.0,
            ban_cooldown_ms: 30_000.0,
            conflict_rebind_ms: 1_000.0,
            conflict_drop_after: 3,
        }
    }
}

/// What fusion should do with one inspected message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Fold it into fused state normally.
    Fuse,
    /// Update the slot and liveness, but exclude the pole's data from
    /// fused occupancy at snapshot time.
    Quarantine,
    /// Do not touch fused state at all (banned pole or a conflicting
    /// connection).
    Reject,
}

/// The sentinel's judgement of one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inspection {
    /// What fusion should do with the message.
    pub disposition: Disposition,
    /// Whether the delivering connection should be dropped (ban, or a
    /// conflict past the strike limit).
    pub drop_connection: bool,
    /// Trust transition this message caused, if any.
    pub transition: Option<(TrustState, TrustState)>,
    /// Semantic violations the message carried.
    pub violations: u32,
}

/// Per-pole trust counters, as exposed to benches and checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoleTrust {
    /// The pole.
    pub pole_id: u32,
    /// Current violation score.
    pub score: f64,
    /// Current trust state.
    pub state: TrustState,
    /// Remaining ban cooldown at export time, ms (0 unless banned).
    pub ban_remaining_ms: f64,
    /// Messages that fused normally.
    pub fused: u64,
    /// Messages counted but excluded from fusion.
    pub quarantined: u64,
    /// Messages rejected outright.
    pub rejected: u64,
    /// Total violations observed.
    pub violations: u64,
}

impl PoleTrust {
    /// Serialises for the checkpoint body (fixed 61-byte record).
    pub(crate) fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.pole_id.to_le_bytes());
        out.extend_from_slice(&self.score.to_le_bytes());
        out.push(self.state.byte());
        out.extend_from_slice(&self.ban_remaining_ms.to_le_bytes());
        out.extend_from_slice(&self.fused.to_le_bytes());
        out.extend_from_slice(&self.quarantined.to_le_bytes());
        out.extend_from_slice(&self.rejected.to_le_bytes());
        out.extend_from_slice(&self.violations.to_le_bytes());
    }

    pub(crate) fn state_from_byte(b: u8) -> Option<TrustState> {
        TrustState::from_byte(b)
    }
}

/// Rectangular campus bounding box in ground-plane metres.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bounds {
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
}

#[derive(Debug, Clone)]
struct PoleGuard {
    score: f64,
    state: TrustState,
    banned_until_ms: f64,
    owner_conn: u32,
    owner_heard_ms: f64,
    fused: u64,
    quarantined: u64,
    rejected: u64,
    violations: u64,
}

impl Default for PoleGuard {
    fn default() -> Self {
        PoleGuard {
            score: 0.0,
            state: TrustState::Trusted,
            banned_until_ms: 0.0,
            owner_conn: 0,
            owner_heard_ms: 0.0,
            fused: 0,
            quarantined: 0,
            rejected: 0,
            violations: 0,
        }
    }
}

/// Most connection ids the conflict strike table retains; the oldest
/// id is evicted past this, bounding memory under connection churn.
const MAX_TRACKED_CONNS: usize = 4096;

/// The per-pole trust machine. Owned by `FusionCore`; all state is
/// driven by [`Sentinel::inspect`] calls in connection-FIFO order.
#[derive(Debug)]
pub struct Sentinel {
    cfg: SentinelConfig,
    bounds: Option<Bounds>,
    poses: BTreeMap<u32, PolePose>,
    poles: BTreeMap<u32, PoleGuard>,
    conn_strikes: BTreeMap<u32, u32>,
}

impl Sentinel {
    /// A sentinel judging against the surveyed `registry` + walkway
    /// geometry. An empty registry disables the bounds check (there
    /// is nothing to bound against).
    pub fn new(cfg: SentinelConfig, registry: &PoleRegistry, walkway: &WalkwayConfig) -> Self {
        let bounds = Self::campus_bounds(registry, walkway, cfg.bounds_margin_m);
        Sentinel {
            cfg,
            bounds,
            poses: registry.poses().map(|p| (p.pole_id, *p)).collect(),
            poles: BTreeMap::new(),
            conn_strikes: BTreeMap::new(),
        }
    }

    fn campus_bounds(
        registry: &PoleRegistry,
        walkway: &WalkwayConfig,
        margin: f64,
    ) -> Option<Bounds> {
        let hw = walkway.half_width();
        let mut bounds: Option<Bounds> = None;
        for pose in registry.poses() {
            for (lx, ly) in [
                (walkway.x_min, -hw),
                (walkway.x_min, hw),
                (walkway.x_max, -hw),
                (walkway.x_max, hw),
            ] {
                let p = pose.to_campus(geom::Point3::new(lx, ly, 0.0));
                bounds = Some(match bounds {
                    None => Bounds {
                        min_x: p.x,
                        max_x: p.x,
                        min_y: p.y,
                        max_y: p.y,
                    },
                    Some(b) => Bounds {
                        min_x: b.min_x.min(p.x),
                        max_x: b.max_x.max(p.x),
                        min_y: b.min_y.min(p.y),
                        max_y: b.max_y.max(p.y),
                    },
                });
            }
        }
        bounds.map(|b| Bounds {
            min_x: b.min_x - margin,
            max_x: b.max_x + margin,
            min_y: b.min_y - margin,
            max_y: b.max_y + margin,
        })
    }

    /// How many connection ids the conflict strike table currently
    /// tracks (bounded by an internal cap; ops surface).
    pub fn tracked_conns(&self) -> usize {
        self.conn_strikes.len()
    }

    /// The trust state of `pole_id` (Trusted when never seen).
    pub fn state_of(&self, pole_id: u32) -> TrustState {
        self.poles
            .get(&pole_id)
            .map_or(TrustState::Trusted, |g| g.state)
    }

    /// Exports every pole's trust record (for checkpoints and bench
    /// reporting). `now_ms` converts an active ban into a remaining
    /// cooldown that survives a restart.
    pub fn export(&self, now_ms: f64) -> Vec<PoleTrust> {
        self.poles
            .iter()
            .map(|(&pole_id, g)| PoleTrust {
                pole_id,
                score: g.score,
                state: g.state,
                ban_remaining_ms: if g.state == TrustState::Banned {
                    (g.banned_until_ms - now_ms).max(0.0)
                } else {
                    0.0
                },
                fused: g.fused,
                quarantined: g.quarantined,
                rejected: g.rejected,
                violations: g.violations,
            })
            .collect()
    }

    /// Restores trust records from a checkpoint. Connection bindings
    /// are not restored — connection ids do not survive a restart.
    pub fn import(&mut self, records: &[PoleTrust], now_ms: f64) {
        for r in records {
            self.poles.insert(
                r.pole_id,
                PoleGuard {
                    score: r.score,
                    state: r.state,
                    banned_until_ms: if r.state == TrustState::Banned {
                        now_ms + r.ban_remaining_ms
                    } else {
                        0.0
                    },
                    owner_conn: 0,
                    owner_heard_ms: 0.0,
                    fused: r.fused,
                    quarantined: r.quarantined,
                    rejected: r.rejected,
                    violations: r.violations,
                },
            );
        }
    }

    /// Judges one decoded message delivered by `conn_id` at `now_ms`.
    /// `conn_id` 0 means "direct ingest, no connection identity" and
    /// skips conflict tracking. `last_accepted_seq` is the fused
    /// slot's newest report seq (0 when none).
    pub fn inspect(
        &mut self,
        conn_id: u32,
        msg: &Message,
        now_ms: f64,
        last_accepted_seq: u64,
    ) -> Inspection {
        if !self.cfg.enabled {
            return Inspection {
                disposition: Disposition::Fuse,
                drop_connection: false,
                transition: None,
                violations: 0,
            };
        }
        let cfg = self.cfg;
        let pole_id = msg.pole_id();
        let guard = self.poles.entry(pole_id).or_default();
        let state_at_entry = guard.state;

        // An expired ban re-admits the pole on probation; an active
        // one rejects everything and keeps dropping the connection.
        if guard.state == TrustState::Banned {
            if now_ms < guard.banned_until_ms {
                guard.rejected += 1;
                obs::incr("fleet.sentinel.rejected", 1);
                return Inspection {
                    disposition: Disposition::Reject,
                    drop_connection: true,
                    transition: None,
                    violations: 0,
                };
            }
            guard.state = TrustState::Quarantined;
            guard.score = cfg.quarantine_at;
            guard.banned_until_ms = 0.0;
        }

        // Connection-identity conflicts are judged before semantics:
        // a frame from a non-owning connection never touches fused
        // state *or* the pole's score.
        if conn_id != 0 {
            let owner_active = guard.owner_conn != 0
                && guard.owner_conn != conn_id
                && now_ms - guard.owner_heard_ms < cfg.conflict_rebind_ms;
            if owner_active {
                guard.rejected += 1;
                let strikes = {
                    let s = self.conn_strikes.entry(conn_id).or_insert(0);
                    *s += 1;
                    *s
                };
                // The strike table is keyed by connection id, which a
                // reconnect-churning (or hostile) fleet mints without
                // bound; evict the oldest tracked connection past the
                // cap so a year of churn cannot grow the aggregator.
                // Ids are monotonic, so the first key is the oldest
                // and never the one just struck.
                while self.conn_strikes.len() > MAX_TRACKED_CONNS {
                    self.conn_strikes.pop_first();
                }
                obs::incr("fleet.sentinel.conflicts", 1);
                let transition =
                    (state_at_entry != guard.state).then_some((state_at_entry, guard.state));
                return Inspection {
                    disposition: Disposition::Reject,
                    drop_connection: strikes >= cfg.conflict_drop_after,
                    transition,
                    violations: 1,
                };
            }
            guard.owner_conn = conn_id;
            guard.owner_heard_ms = now_ms;
        }

        // Semantic checks.
        let mut weight = 0.0;
        let mut violations = 0u32;
        let record = |v: Violation, weight_acc: &mut f64, count: &mut u32| {
            obs::incr(&format!("fleet.sentinel.violation.{}", v.as_str()), 1);
            *weight_acc += v.weight();
            *count += 1;
        };
        match msg {
            Message::Report(r) => {
                if let Some(b) = &self.bounds {
                    // Bounds are judged in campus coordinates, so only
                    // surveyed poles can be judged — an unregistered
                    // pole's local frame maps nowhere.
                    if let Some(pose) = self.poses.get(&pole_id) {
                        let out = r.clusters.iter().any(|c| {
                            let p = pose.to_campus(c.centroid);
                            p.x < b.min_x || p.x > b.max_x || p.y < b.min_y || p.y > b.max_y
                        });
                        if out {
                            record(Violation::OutOfBounds, &mut weight, &mut violations);
                        }
                    }
                }
                if last_accepted_seq > cfg.seq_regression_tolerance
                    && r.seq < last_accepted_seq - cfg.seq_regression_tolerance
                {
                    record(Violation::SeqReplay, &mut weight, &mut violations);
                }
                if let Some(capture) = r.capture_ms {
                    if (now_ms - capture).abs() > cfg.max_clock_skew_ms {
                        record(Violation::ClockSkew, &mut weight, &mut violations);
                    }
                }
                if r.count > cfg.max_plausible_count {
                    record(Violation::ImplausibleCount, &mut weight, &mut violations);
                }
            }
            Message::Telemetry(t) => {
                if t.window_ms > cfg.max_telemetry_window_ms {
                    record(Violation::TelemetryInsane, &mut weight, &mut violations);
                }
            }
            Message::Hello { .. } | Message::Heartbeat(_) | Message::Bye { .. } => {}
        }

        if violations == 0 {
            guard.score *= cfg.decay;
            if guard.score < 1e-6 {
                guard.score = 0.0;
            }
        } else {
            guard.score += weight;
            guard.violations += u64::from(violations);
        }

        guard.state = if guard.score >= cfg.ban_at {
            TrustState::Banned
        } else if guard.score >= cfg.quarantine_at {
            TrustState::Quarantined
        } else if guard.score >= cfg.suspect_at {
            TrustState::Suspect
        } else {
            TrustState::Trusted
        };
        if guard.state == TrustState::Banned && state_at_entry != TrustState::Banned {
            guard.banned_until_ms = now_ms + cfg.ban_cooldown_ms;
        }

        let disposition = match guard.state {
            TrustState::Banned => {
                guard.rejected += 1;
                obs::incr("fleet.sentinel.rejected", 1);
                Disposition::Reject
            }
            TrustState::Quarantined => {
                guard.quarantined += 1;
                obs::incr("fleet.sentinel.quarantined", 1);
                Disposition::Quarantine
            }
            _ => {
                guard.fused += 1;
                Disposition::Fuse
            }
        };
        let transition = (state_at_entry != guard.state).then_some((state_at_entry, guard.state));
        Inspection {
            disposition,
            drop_connection: guard.state == TrustState::Banned,
            transition,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Message;
    use world::{corridor_layout, PoleRegistry, WalkwayConfig};

    #[test]
    fn conflict_strike_table_is_bounded() {
        let registry = PoleRegistry::from_poses(corridor_layout(1, 15.0));
        let walkway = WalkwayConfig::default();
        let mut sentinel = Sentinel::new(SentinelConfig::default(), &registry, &walkway);
        let hello = Message::Hello { pole_id: 0 };

        // Conn 1 owns the pole; a reconnect-churning imposter then
        // hits it from tens of thousands of distinct connection ids,
        // each of which earns a conflict strike. Pre-cap, the strike
        // table grew one entry per id, forever.
        sentinel.inspect(1, &hello, 0.0, 0);
        for conn in 2..20_000u32 {
            let insp = sentinel.inspect(conn, &hello, 1.0, 0);
            assert!(
                matches!(insp.disposition, Disposition::Reject),
                "imposter connections must be rejected"
            );
        }
        assert!(
            sentinel.tracked_conns() <= MAX_TRACKED_CONNS,
            "strike table must stay bounded under connection churn, got {}",
            sentinel.tracked_conns()
        );
        // The owner is still the owner.
        let insp = sentinel.inspect(1, &hello, 2.0, 0);
        assert!(matches!(insp.disposition, Disposition::Fuse));
    }
}
