//! The campus health scoreboard and fleet event journal.
//!
//! The aggregator sees three streams per pole — reports, heartbeats,
//! telemetry windows — and this module is where they become an ops
//! surface: a [`FleetHealth`] scoreboard of per-pole rollups (merged
//! telemetry, end-to-end ingest latency percentiles) plus a bounded,
//! structured [`EventJournal`] of the things an operator greps for at
//! 2 am: connects, reconnects, liveness flips, ladder and health
//! transitions.
//!
//! Everything here is derived state, held *outside*
//! [`crate::CampusSnapshot`] on purpose: the campus snapshot stays a
//! pure function of arrived reports (the determinism tests pin that
//! bit-for-bit), while the scoreboard is allowed to remember history.

use std::collections::VecDeque;

use counting::HealthState;
use obs::{HistogramCells, TelemetrySnapshot};
use serde::{Deserialize, Serialize};

use crate::aggregator::Liveness;
use crate::sentinel::TrustState;

/// Something that happened to a pole, as judged by the aggregator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEventKind {
    /// First Hello ever heard from this pole.
    Connected,
    /// A Hello from a pole the aggregator already knew — the far end
    /// redialled (backoff recovery or an agent restart).
    Reconnected,
    /// An orderly goodbye.
    Bye,
    /// The liveness state machine moved (Stale/Dead walks and
    /// resurrections alike).
    LivenessChanged {
        /// State before.
        from: Liveness,
        /// State after.
        to: Liveness,
    },
    /// The pole's degradation ladder moved (ε rung or precision), as
    /// seen on its reports.
    LadderChanged {
        /// `"<eps>/<precision>"` label before.
        from: String,
        /// `"<eps>/<precision>"` label after.
        to: String,
    },
    /// The pole's supervisor health moved, as seen on its reports.
    HealthChanged {
        /// State before.
        from: HealthState,
        /// State after.
        to: HealthState,
    },
    /// The sentinel moved the pole on the trust ladder.
    TrustChanged {
        /// State before.
        from: TrustState,
        /// State after.
        to: TrustState,
    },
    /// A banned pole tried to reconnect during its cooldown and was
    /// turned away.
    BanRejected,
    /// The aggregator restored fused state from a checkpoint
    /// (`pole_id` 0 — the event is campus-wide).
    Restored {
        /// Pole slots the checkpoint carried.
        poles: u32,
    },
}

impl FleetEventKind {
    /// Journal label for the event type.
    pub fn as_str(&self) -> &'static str {
        match self {
            FleetEventKind::Connected => "connected",
            FleetEventKind::Reconnected => "reconnected",
            FleetEventKind::Bye => "bye",
            FleetEventKind::LivenessChanged { .. } => "liveness_changed",
            FleetEventKind::LadderChanged { .. } => "ladder_changed",
            FleetEventKind::HealthChanged { .. } => "health_changed",
            FleetEventKind::TrustChanged { .. } => "trust_changed",
            FleetEventKind::BanRejected => "ban_rejected",
            FleetEventKind::Restored { .. } => "restored",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Aggregator-clock timestamp, ms.
    pub at_ms: f64,
    /// The pole it happened to.
    pub pole_id: u32,
    /// What happened.
    pub kind: FleetEventKind,
}

impl FleetEvent {
    /// One JSONL line.
    pub fn to_json(&self) -> String {
        let detail = match &self.kind {
            FleetEventKind::LivenessChanged { from, to } => {
                format!(",\"from\":\"{}\",\"to\":\"{}\"", from.as_str(), to.as_str())
            }
            FleetEventKind::LadderChanged { from, to } => {
                format!(",\"from\":\"{from}\",\"to\":\"{to}\"")
            }
            FleetEventKind::HealthChanged { from, to } => {
                format!(",\"from\":\"{}\",\"to\":\"{}\"", from.as_str(), to.as_str())
            }
            FleetEventKind::TrustChanged { from, to } => {
                format!(",\"from\":\"{}\",\"to\":\"{}\"", from.as_str(), to.as_str())
            }
            FleetEventKind::Restored { poles } => format!(",\"poles\":{poles}"),
            _ => String::new(),
        };
        format!(
            "{{\"at_ms\":{:.3},\"pole_id\":{},\"event\":\"{}\"{detail}}}",
            self.at_ms,
            self.pole_id,
            self.kind.as_str()
        )
    }
}

/// A bounded, append-only journal of fleet events. When the cap is
/// reached the oldest entries fall off (and are counted), so a flappy
/// pole cannot eat the aggregator's memory.
#[derive(Debug)]
pub struct EventJournal {
    events: VecDeque<FleetEvent>,
    cap: usize,
    total: u64,
    dropped: u64,
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::with_capacity(1024)
    }
}

impl EventJournal {
    /// A journal keeping at most `cap` recent events.
    pub fn with_capacity(cap: usize) -> Self {
        EventJournal {
            events: VecDeque::new(),
            cap: cap.max(1),
            total: 0,
            dropped: 0,
        }
    }

    /// Appends one event, evicting the oldest at the cap.
    pub fn push(&mut self, event: FleetEvent) {
        self.total += 1;
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FleetEvent> {
        self.events.iter()
    }

    /// Events ever journalled (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events evicted by the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The whole retained journal as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }
}

/// One pole's row on the scoreboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoleHealth {
    /// Pole id.
    pub pole_id: u32,
    /// Liveness at scoreboard time.
    pub liveness: Liveness,
    /// Sentinel trust state at scoreboard time.
    pub trust: TrustState,
    /// Merged telemetry windows the pole has shipped: counters are
    /// lifetime deltas summed back to totals, gauges are the latest
    /// values, histograms are exact bucket merges.
    pub telemetry: TelemetrySnapshot,
    /// End-to-end ingest latency (pole capture → fused slot) for every
    /// traced report from this pole.
    pub ingest: HistogramCells,
    /// Telemetry frames received.
    pub telemetry_frames: u64,
    /// `window_ms` of the most recent telemetry frame.
    pub last_window_ms: f64,
}

/// The campus-wide ops scoreboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Aggregator-clock timestamp, ms.
    pub at_ms: f64,
    /// Per-pole rollups, ascending id.
    pub poles: Vec<PoleHealth>,
    /// Campus-wide ingest latency: the exact bucket merge of every
    /// pole's [`PoleHealth::ingest`] cells.
    pub campus_ingest: HistogramCells,
    /// Campus-wide telemetry merge. Histograms and counters aggregate
    /// exactly; gauges are last-merged-pole-wins and only meaningful
    /// per pole.
    pub campus_telemetry: TelemetrySnapshot,
    /// Fleet events ever journalled.
    pub events_total: u64,
    /// Recent journal entries, oldest first.
    pub events: Vec<FleetEvent>,
    /// Serving-tier telemetry (request counters, 304 ratio, response
    /// latency), when an HTTP server is attached. The aggregator
    /// itself never populates this — the process that owns both the
    /// aggregator and the server staples it on via
    /// [`FleetHealth::with_serve`].
    pub serve: Option<TelemetrySnapshot>,
}

fn jsonf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn hist_json(h: &HistogramCells) -> String {
    let s = h.summary();
    format!(
        "{{\"name\":\"{}\",\"count\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},\"min_ms\":{},\"max_ms\":{},\"mean_ms\":{}}}",
        s.name,
        s.count,
        jsonf(s.p50_ms),
        jsonf(s.p95_ms),
        jsonf(s.p99_ms),
        jsonf(s.min_ms),
        jsonf(s.max_ms),
        jsonf(s.mean_ms),
    )
}

impl FleetHealth {
    /// Merges per-shard scoreboards into one campus view. Shards
    /// partition poles, so pole rows concatenate and re-sort by id,
    /// the campus-wide rollups re-merge, and the event journals
    /// interleave by event time (the sort is stable and the shard
    /// order is fixed, so the merge is deterministic).
    pub fn merge(parts: Vec<FleetHealth>) -> FleetHealth {
        let mut out = FleetHealth {
            at_ms: 0.0,
            poles: Vec::new(),
            campus_ingest: HistogramCells::empty("fleet.ingest"),
            campus_telemetry: TelemetrySnapshot::default(),
            events_total: 0,
            events: Vec::new(),
            serve: None,
        };
        for part in parts {
            if part.at_ms > out.at_ms {
                out.at_ms = part.at_ms;
            }
            out.campus_ingest.merge(&part.campus_ingest);
            out.campus_telemetry.merge(&part.campus_telemetry);
            out.events_total += part.events_total;
            out.poles.extend(part.poles);
            out.events.extend(part.events);
            if let Some(serve) = part.serve {
                match &mut out.serve {
                    Some(merged) => merged.merge(&serve),
                    slot => *slot = Some(serve),
                }
            }
        }
        out.poles.sort_by_key(|p| p.pole_id);
        out.events.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        out
    }

    /// Staples serving-tier telemetry onto the scoreboard. The serve
    /// crate's metric names (`serve.requests`, `serve.304`,
    /// `serve.handle_ms`, …) are what [`FleetHealth::to_json`] and
    /// [`FleetHealth::render_table`] surface.
    pub fn with_serve(mut self, serve: TelemetrySnapshot) -> Self {
        self.serve = Some(serve);
        self
    }

    /// The scoreboard as one JSONL line (events ride separately via
    /// [`EventJournal::to_jsonl`]).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"at_ms\":{:.3},\"events_total\":{},\"campus_ingest\":{},\"poles\":[",
            self.at_ms,
            self.events_total,
            hist_json(&self.campus_ingest)
        ));
        for (i, p) in self.poles.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"pole_id\":{},\"liveness\":\"{}\",\"trust\":\"{}\",\"telemetry_frames\":{},\"frames\":{},\"frames_held\":{},\"ingest\":{}",
                p.pole_id,
                p.liveness.as_str(),
                p.trust.as_str(),
                p.telemetry_frames,
                p.telemetry.counter("pole.frames"),
                p.telemetry.counter("pole.frames_held"),
                hist_json(&p.ingest),
            ));
            for (key, gauge) in [
                ("health", "pole.health"),
                ("eps_rung", "pole.eps_rung"),
                ("temp_c", "pole.temp_c"),
                ("queue_depth", "pole.queue_depth"),
            ] {
                if let Some(v) = p.telemetry.gauge(gauge) {
                    s.push_str(&format!(",\"{key}\":{}", jsonf(v)));
                }
            }
            s.push('}');
        }
        s.push(']');
        if let Some(serve) = &self.serve {
            let requests = serve.counter("serve.requests");
            let hits = serve.counter("serve.304");
            let answered = serve.counter("serve.200") + hits;
            let ratio = if answered == 0 {
                0.0
            } else {
                hits as f64 / answered as f64
            };
            s.push_str(&format!(
                ",\"serve\":{{\"requests\":{},\"r200\":{},\"r304\":{},\"r4xx\":{},\"parked\":{},\"hit_ratio\":{}",
                requests,
                serve.counter("serve.200"),
                hits,
                serve.counter("serve.4xx"),
                serve.counter("serve.parked"),
                jsonf(ratio),
            ));
            if let Some(h) = serve.histogram("serve.handle_ms") {
                s.push_str(&format!(",\"handle_ms\":{}", hist_json(h)));
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// A human-readable scoreboard for terminals (`--ops`).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("fleet health scoreboard\n");
        out.push_str(&format!(
            "{:>6} {:>6} {:>11} {:>7} {:>6} {:>9} {:>9} {:>9} {:>7} {:>6}\n",
            "pole",
            "state",
            "trust",
            "frames",
            "held",
            "ingst p50",
            "ingst p95",
            "ingst p99",
            "temp",
            "queue"
        ));
        for p in &self.poles {
            let s = p.ingest.summary();
            let temp = p
                .telemetry
                .gauge("pole.temp_c")
                .map_or("-".to_string(), |v| format!("{v:.1}"));
            let queue = p
                .telemetry
                .gauge("pole.queue_depth")
                .map_or("-".to_string(), |v| format!("{v:.0}"));
            out.push_str(&format!(
                "{:>6} {:>6} {:>11} {:>7} {:>6} {:>9} {:>9} {:>9} {:>7} {:>6}\n",
                p.pole_id,
                p.liveness.as_str(),
                p.trust.as_str(),
                p.telemetry.counter("pole.frames"),
                p.telemetry.counter("pole.frames_held"),
                format!("{:.2}", s.p50_ms),
                format!("{:.2}", s.p95_ms),
                format!("{:.2}", s.p99_ms),
                temp,
                queue,
            ));
        }
        let c = self.campus_ingest.summary();
        out.push_str(&format!(
            "campus ingest: n={} p50={:.2} ms p95={:.2} ms p99={:.2} ms max={:.2} ms\n",
            c.count, c.p50_ms, c.p95_ms, c.p99_ms, c.max_ms
        ));
        if let Some(serve) = &self.serve {
            let hits = serve.counter("serve.304");
            let answered = serve.counter("serve.200") + hits;
            let ratio = if answered == 0 {
                0.0
            } else {
                100.0 * hits as f64 / answered as f64
            };
            out.push_str(&format!(
                "serve: {} requests, {} full, {} not-modified ({ratio:.1}% cached), {} rejected, {} long-polls",
                serve.counter("serve.requests"),
                serve.counter("serve.200"),
                hits,
                serve.counter("serve.4xx"),
                serve.counter("serve.parked"),
            ));
            if let Some(h) = serve.histogram("serve.handle_ms") {
                let s = h.summary();
                out.push_str(&format!(
                    ", handle p50={:.3} ms p99={:.3} ms",
                    s.p50_ms, s.p99_ms
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "events: {} journalled, {} shown\n",
            self.events_total,
            self.events.len()
        ));
        for e in self
            .events
            .iter()
            .rev()
            .take(12)
            .collect::<Vec<_>>()
            .iter()
            .rev()
        {
            out.push_str(&format!(
                "  [{:>10.1} ms] pole {:>3} {}\n",
                e.at_ms,
                e.pole_id,
                match &e.kind {
                    FleetEventKind::LivenessChanged { from, to } =>
                        format!("liveness {} -> {}", from.as_str(), to.as_str()),
                    FleetEventKind::LadderChanged { from, to } => format!("ladder {from} -> {to}"),
                    FleetEventKind::HealthChanged { from, to } =>
                        format!("health {} -> {}", from.as_str(), to.as_str()),
                    FleetEventKind::TrustChanged { from, to } =>
                        format!("trust {} -> {}", from.as_str(), to.as_str()),
                    FleetEventKind::Restored { poles } =>
                        format!("restored from checkpoint ({poles} poles)"),
                    other => other.as_str().to_string(),
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_caps_and_counts() {
        let mut j = EventJournal::with_capacity(3);
        for i in 0..5 {
            j.push(FleetEvent {
                at_ms: i as f64,
                pole_id: i,
                kind: FleetEventKind::Connected,
            });
        }
        assert_eq!(j.total(), 5);
        assert_eq!(j.dropped(), 2);
        let kept: Vec<u32> = j.events().map(|e| e.pole_id).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted first");
        assert_eq!(j.to_jsonl().lines().count(), 3);
    }

    #[test]
    fn event_json_carries_transition_detail() {
        let e = FleetEvent {
            at_ms: 1_500.0,
            pole_id: 3,
            kind: FleetEventKind::LivenessChanged {
                from: Liveness::Live,
                to: Liveness::Stale,
            },
        };
        let json = e.to_json();
        assert!(json.contains("\"event\":\"liveness_changed\""));
        assert!(json.contains("\"from\":\"live\""));
        assert!(json.contains("\"to\":\"stale\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn scoreboard_json_is_balanced_and_renders() {
        let health = FleetHealth {
            at_ms: 2_000.0,
            poles: vec![PoleHealth {
                pole_id: 0,
                liveness: Liveness::Live,
                trust: TrustState::Trusted,
                telemetry: TelemetrySnapshot::default(),
                ingest: HistogramCells::empty("fleet.ingest.pole0"),
                telemetry_frames: 0,
                last_window_ms: 0.0,
            }],
            campus_ingest: HistogramCells::empty("fleet.ingest"),
            campus_telemetry: TelemetrySnapshot::default(),
            events_total: 0,
            events: Vec::new(),
            serve: None,
        };
        let json = health.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"campus_ingest\""));
        let table = health.render_table();
        assert!(table.contains("campus ingest"));
        assert!(table.contains("pole"));
    }
}
