//! Campus fleet tier for HAWC-CC: pole agents, a wire protocol, and
//! an occupancy aggregator.
//!
//! A blue light pole counts pedestrians by itself (`counting`), but a
//! campus deployment is a *fleet*: dozens of poles, each streaming
//! per-frame counts to a central aggregator that answers "how many
//! people are on campus right now, and where?". This crate is that
//! tier, split into three layers:
//!
//! - [`wire`] — a versioned, length-prefixed, checksummed binary
//!   framing for [`wire::PoleReport`]s and heartbeats. Decoding is
//!   strict and panic-free: a malformed byte stream yields a
//!   [`wire::WireError`], never a crash on the aggregator.
//! - [`transport`] — how frames move: a blocking [`transport::Transport`]
//!   pair over std TCP for real deployments, and a deterministic
//!   in-process loopback with seeded loss/latency/reorder for tests
//!   and benches.
//! - [`agent`] — the pole side: wraps a `counting::SupervisedCounter`,
//!   stamps its output into reports, batches them through a bounded
//!   drop-oldest queue, and reconnects with jittered exponential
//!   backoff when the uplink dies.
//! - [`aggregator`] — the campus side: per-pole liveness from
//!   heartbeat deadlines, centroid fusion that dedups people seen by
//!   two overlapping poles (via `world::PoleRegistry` poses), and
//!   time-windowed [`aggregator::CampusSnapshot`]s for dashboards.
//! - [`health`] — the ops surface derived from all of the above: a
//!   [`health::FleetHealth`] scoreboard of merged per-pole telemetry
//!   and end-to-end ingest latency percentiles, plus a bounded
//!   [`health::EventJournal`] of connects, liveness flips, and ladder
//!   transitions.
//! - [`sentinel`] — Byzantine-input hardening: per-pole semantic
//!   validation of every decoded message, a decaying violation score,
//!   and a Suspect → Quarantined → Banned trust ladder that keeps a
//!   compromised pole from poisoning the campus view.
//! - [`capture`] — wire capture and bit-exact replay: every inbound
//!   frame can be recorded with its arrival metadata and later fed
//!   back through the full decode → sentinel → fusion path, turning a
//!   live anomaly into a frozen regression fixture.
//! - [`checkpoint`] — crash-safe warm restart: the fused state is
//!   periodically serialised to a versioned, CRC'd snapshot file
//!   (written atomically), so a restarted aggregator resumes with
//!   poles still Live instead of flapping the campus Dead.
//!
//! The design invariant underneath all of it: fusion state is keyed
//! per pole and last-sequence-wins, so a campus snapshot is a pure
//! function of *which* reports arrived, not the order or thread they
//! arrived on. Tests pin this — fused counts are bit-identical across
//! one agent thread or eight, and across packet reorder.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod aggregator;
pub mod capture;
pub mod checkpoint;
pub mod health;
pub mod reactor;
pub mod sentinel;
// The vendored dependency set has no `libc`, so the one syscall the
// reactor parks on (`poll(2)`) is hand-declared FFI, quarantined to
// this module. Everything else in the crate stays `deny(unsafe_code)`.
// Public: the serving tier (`crates/serve`) parks its HTTP reactor on
// the same primitive rather than re-declaring the FFI.
#[allow(unsafe_code)]
pub mod sys;
pub mod transport;
pub mod wire;

pub use agent::{AgentConfig, AgentStats, PoleAgent};
pub use aggregator::{
    Aggregator, AggregatorConfig, CampusSnapshot, FusedPerson, FusionConfig, FusionCore,
    FusionStats, IngestVerdict, Liveness, PoleStatus, PublishHook, ShardedFusion, SnapshotCell,
    ZoneOccupancy,
};
pub use capture::{
    load_capture, read_capture, replay, CaptureError, CaptureRecord, CaptureWriter, ReplayTransport,
};
pub use checkpoint::{Checkpoint, CheckpointError, SlotCheckpoint};
pub use health::{EventJournal, FleetEvent, FleetEventKind, FleetHealth, PoleHealth};
pub use reactor::{ReactorConfig, ReactorHandle};
pub use sentinel::{
    Disposition, Inspection, PoleTrust, Sentinel, SentinelConfig, TrustState, Violation,
};
pub use transport::{
    loopback_pair, Connector, LoopbackConfig, LoopbackHub, ReadySignal, TcpConnector, Transport,
    TransportError,
};
pub use wire::{
    decode, encode, ClusterObservation, FrameDecoder, Heartbeat, Message, PoleReport,
    TelemetryFrame, WireError,
};
