//! The pole → campus wire protocol.
//!
//! HAWC-CC's privacy argument (ship counts, never raw clouds) fixes
//! what may cross this wire: per-frame summaries — a count, cluster
//! centroids with confidences, health/ladder state, a thermal gauge —
//! and nothing resembling a point cloud. This module is the *only*
//! place those bytes are defined; the agent and the aggregator both
//! compile against it, so two processes cannot disagree about framing.
//!
//! # Framing
//!
//! Every message travels in one length-prefixed frame:
//!
//! ```text
//! ┌────────────┬─────────┬──────────┬──────────────┬─────────┬──────────────┐
//! │ magic u32  │ ver u8  │ type u8  │ body len u32 │ body …  │ crc32 u32    │
//! │ 0x48574343 │ 1..=2   │ 1..=5    │ ≤ 64 KiB     │         │ ver..body    │
//! └────────────┴─────────┴──────────┴──────────────┴─────────┴──────────────┘
//! ```
//!
//! All integers and floats are little-endian. The CRC-32 (IEEE) covers
//! version, type, length, and body — a flipped bit anywhere past the
//! magic is rejected, not misinterpreted.
//!
//! # Versioning
//!
//! This build encodes [`VERSION`] and decodes every version in
//! [`MIN_VERSION`]`..=`[`VERSION`]. Version 2 added two things to
//! version 1: a per-frame trace context on [`PoleReport`]
//! ([`PoleReport::capture_ms`], flag-gated so v1 frames still decode,
//! with `capture_ms: None`) and the [`Message::Telemetry`] message
//! type carrying a portable [`obs::TelemetrySnapshot`]. A v2
//! aggregator therefore drains mixed fleets mid-rollout; a v1
//! aggregator rejects v2 frames cleanly as `UnsupportedVersion`.
//!
//! # Decode discipline
//!
//! Decoding **never panics** on malformed input: every read is
//! length-checked, every enum discriminant validated, every float
//! checked against the field's domain, and anything wrong is a typed
//! [`WireError`]. A framing error is not recoverable mid-stream (the
//! reader has lost byte alignment), so [`FrameDecoder::next_message`]
//! poisons itself after the first error and the transport layer must
//! reset the connection — the same contract TCP framing bugs force on
//! real services.

use bytes::{BufMut, BytesMut};
use counting::{EpsRung, HealthState, PrecisionRung};
use geom::Point3;
use obs::{HistogramCells, TelemetrySnapshot};
use serde::{Deserialize, Serialize};

/// Frame magic: `b"HWCC"` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"HWCC");

/// Wire protocol version this build encodes.
pub const VERSION: u8 = 2;

/// Oldest wire protocol version this build still decodes.
pub const MIN_VERSION: u8 = 1;

/// Frame header length in bytes (magic + version + type + body len).
pub const HEADER_LEN: usize = 10;

/// Trailing checksum length in bytes.
pub const CHECKSUM_LEN: usize = 4;

/// Hard ceiling on a frame body. A report with the ~100-cluster worst
/// case is under 5 KiB; anything near this limit is corruption or
/// abuse, not data.
pub const MAX_BODY_LEN: usize = 64 * 1024;

/// Largest complete frame the protocol allows.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + MAX_BODY_LEN + CHECKSUM_LEN;

/// Hard ceiling on a [`FrameDecoder`]'s undrained buffer: a few
/// worst-case frames. Well-behaved callers drain after every push;
/// only a hostile sender paired with a caller that never drains can
/// reach this, and the decoder poisons rather than buffer without
/// bound.
pub const MAX_PENDING_BYTES: usize = 4 * MAX_FRAME_LEN;

/// Most clusters one report frame can carry: the fixed report fields
/// plus this many cluster records still fit [`MAX_BODY_LEN`]. The
/// encoder truncates longer lists (keeping `count` intact) so an
/// encodable message is always decodable — an over-limit body would
/// be rejected as [`WireError::Oversize`] by the receiver, poisoning
/// its [`FrameDecoder`] and costing the connection.
pub const MAX_WIRE_CLUSTERS: usize = (MAX_BODY_LEN - REPORT_FIXED_LEN) / CLUSTER_WIRE_LEN;

/// Longest metric name a telemetry frame carries; the encoder
/// truncates longer ones at a character boundary.
pub const MAX_TELEMETRY_NAME: usize = 96;

/// Most counters one telemetry frame carries.
pub const MAX_TELEMETRY_COUNTERS: usize = 128;

/// Most gauges one telemetry frame carries.
pub const MAX_TELEMETRY_GAUGES: usize = 128;

/// Most histograms one telemetry frame carries. The worst-case frame
/// (every cap hit, every histogram with all 64 buckets occupied)
/// stays under [`MAX_BODY_LEN`].
pub const MAX_TELEMETRY_HISTOGRAMS: usize = 32;

/// Everything that can be wrong with bytes on this wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame did not start with [`MAGIC`].
    BadMagic(u32),
    /// The sender speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// Unknown message type discriminant.
    UnknownMessageType(u8),
    /// The body length field exceeds [`MAX_BODY_LEN`].
    Oversize(u32),
    /// The buffer ended before the structure it promised.
    Truncated,
    /// The CRC-32 over version..body did not match.
    ChecksumMismatch {
        /// Checksum carried by the frame.
        expected: u32,
        /// Checksum computed from the received bytes.
        computed: u32,
    },
    /// The body decoded but left unconsumed bytes.
    TrailingBytes(usize),
    /// A field held a value outside its domain.
    Malformed(&'static str),
    /// The receive buffer exceeded [`MAX_PENDING_BYTES`] without the
    /// caller draining it — a peer is flooding faster than frames can
    /// possibly be this large.
    Backlog(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(got) => write!(f, "bad frame magic {got:#010x}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownMessageType(t) => write!(f, "unknown message type {t}"),
            WireError::Oversize(n) => write!(f, "body length {n} exceeds {MAX_BODY_LEN}"),
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::ChecksumMismatch { expected, computed } => {
                write!(
                    f,
                    "checksum mismatch: frame {expected:#010x}, computed {computed:#010x}"
                )
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after body"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
            WireError::Backlog(n) => {
                write!(f, "{n} undrained bytes exceed {MAX_PENDING_BYTES}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// One fused observation of a (probable) pedestrian cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterObservation {
    /// Cluster centroid in the reporting pole's sensor frame.
    pub centroid: Point3,
    /// Points the cluster contained on the pole.
    pub points: u32,
    /// Detection confidence in `[0, 1]` (cluster-support heuristic:
    /// the pipeline's classifier is a hard decision, so support size
    /// stands in for a posterior).
    pub confidence: f64,
}

/// One pole frame's worth of counting state — the only payload that
/// ever leaves a pole.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoleReport {
    /// Reporting pole.
    pub pole_id: u32,
    /// Per-pole monotonically increasing report number. The
    /// aggregator uses it to discard stale reorders.
    pub seq: u64,
    /// Pole-monotonic capture timestamp in ms (meaningful only
    /// relative to the same pole's other timestamps).
    pub timestamp_ms: u64,
    /// The supervised count reported downstream.
    pub count: u32,
    /// Supervisor health after the frame.
    pub health: HealthState,
    /// ε-ladder rung the frame ran on.
    pub eps_rung: EpsRung,
    /// Precision rung the frame ran on.
    pub precision: PrecisionRung,
    /// True when `count` is a held last-good value.
    pub held: bool,
    /// Consecutive frames the held value has been reused.
    pub stale_frames: u32,
    /// Milliseconds since the pole's last completed frame
    /// (`INFINITY` encodes "never").
    pub age_ms: f64,
    /// Compartment temperature in °C, when the pole has a probe.
    pub pole_temp_c: Option<f64>,
    /// Trace context (wire v2): the instant the frame's capture was
    /// handed to the agent, on the same clock as `timestamp_ms`. When
    /// pole and aggregator share that clock (in-process fleets, or
    /// NTP-disciplined deployments) the aggregator subtracts it from
    /// its own now to get true end-to-end ingest latency. `None` on
    /// frames from v1 poles.
    pub capture_ms: Option<f64>,
    /// Human-classified cluster centroids, pole-local coordinates.
    /// At most [`MAX_WIRE_CLUSTERS`] survive encoding; the tail is
    /// truncated to keep the frame under [`MAX_BODY_LEN`].
    pub clusters: Vec<ClusterObservation>,
}

/// A liveness beacon sent whenever the report stream goes quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Beaconing pole.
    pub pole_id: u32,
    /// The pole's current report sequence number.
    pub seq: u64,
    /// Pole-monotonic send time in ms.
    pub timestamp_ms: u64,
}

/// A pole's periodic telemetry window (wire v2): the delta of its
/// scoped [`obs::Registry`] since the previous emission, shipped on
/// the heartbeat cadence so the aggregator sees stage latencies,
/// ladder state and thermal gauges without ever seeing a point cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryFrame {
    /// Reporting pole.
    pub pole_id: u32,
    /// The pole's report sequence at emission time (correlates the
    /// window with the report stream).
    pub seq: u64,
    /// Pole-monotonic emission time in ms.
    pub timestamp_ms: u64,
    /// Length of the activity window this snapshot covers, ms.
    pub window_ms: f64,
    /// The window's activity: counter deltas, gauge values, histogram
    /// cells. Bounded on the wire by [`MAX_TELEMETRY_COUNTERS`],
    /// [`MAX_TELEMETRY_GAUGES`], [`MAX_TELEMETRY_HISTOGRAMS`] and
    /// [`MAX_TELEMETRY_NAME`]; the encoder truncates (sorted-name
    /// order, so deterministically) rather than emit a frame the
    /// receiver would reject.
    pub snapshot: TelemetrySnapshot,
}

/// Every message the protocol carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Connection opener: announces the pole behind the socket.
    Hello {
        /// Connecting pole.
        pole_id: u32,
    },
    /// A per-frame counting report.
    Report(PoleReport),
    /// A liveness beacon.
    Heartbeat(Heartbeat),
    /// Orderly goodbye; the aggregator marks the pole offline
    /// immediately instead of waiting out the heartbeat timeout.
    Bye {
        /// Departing pole.
        pole_id: u32,
    },
    /// A periodic observability window (wire v2).
    Telemetry(TelemetryFrame),
}

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Report(_) => 2,
            Message::Heartbeat(_) => 3,
            Message::Bye { .. } => 4,
            Message::Telemetry(_) => 5,
        }
    }

    /// The pole the message speaks for.
    pub fn pole_id(&self) -> u32 {
        match self {
            Message::Hello { pole_id } | Message::Bye { pole_id } => *pole_id,
            Message::Report(r) => r.pole_id,
            Message::Heartbeat(h) => h.pole_id,
            Message::Telemetry(t) => t.pole_id,
        }
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), byte-at-a-time over a lazily built table.

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Checked little-endian reader: the panic-free dual of `bytes::Buf`.

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

// ---------------------------------------------------------------------------
// Body codecs.

const FLAG_HELD: u8 = 1 << 0;
const FLAG_HAS_TEMP: u8 = 1 << 1;
const FLAG_HAS_CAPTURE: u8 = 1 << 2;

/// Report flags a frame of `version` may legally carry.
fn known_report_flags(version: u8) -> u8 {
    if version >= 2 {
        FLAG_HELD | FLAG_HAS_TEMP | FLAG_HAS_CAPTURE
    } else {
        FLAG_HELD | FLAG_HAS_TEMP
    }
}

fn health_byte(h: HealthState) -> u8 {
    match h {
        HealthState::Healthy => 0,
        HealthState::Degraded => 1,
        HealthState::Faulted => 2,
    }
}

fn health_from(b: u8) -> Result<HealthState, WireError> {
    match b {
        0 => Ok(HealthState::Healthy),
        1 => Ok(HealthState::Degraded),
        2 => Ok(HealthState::Faulted),
        _ => Err(WireError::Malformed("health state")),
    }
}

fn eps_byte(r: EpsRung) -> u8 {
    match r {
        EpsRung::Adaptive => 0,
        EpsRung::Cached => 1,
        EpsRung::Fixed => 2,
    }
}

fn eps_from(b: u8) -> Result<EpsRung, WireError> {
    match b {
        0 => Ok(EpsRung::Adaptive),
        1 => Ok(EpsRung::Cached),
        2 => Ok(EpsRung::Fixed),
        _ => Err(WireError::Malformed("eps rung")),
    }
}

fn precision_byte(p: PrecisionRung) -> u8 {
    match p {
        PrecisionRung::Fp32 => 0,
        PrecisionRung::Int8 => 1,
    }
}

fn precision_from(b: u8) -> Result<PrecisionRung, WireError> {
    match b {
        0 => Ok(PrecisionRung::Fp32),
        1 => Ok(PrecisionRung::Int8),
        _ => Err(WireError::Malformed("precision rung")),
    }
}

fn put_report(body: &mut BytesMut, r: &PoleReport) {
    body.put_u32_le(r.pole_id);
    body.put_u64_le(r.seq);
    body.put_u64_le(r.timestamp_ms);
    body.put_u32_le(r.count);
    body.put_u8(health_byte(r.health));
    body.put_u8(eps_byte(r.eps_rung));
    body.put_u8(precision_byte(r.precision));
    let mut flags = 0u8;
    if r.held {
        flags |= FLAG_HELD;
    }
    if r.pole_temp_c.is_some() {
        flags |= FLAG_HAS_TEMP;
    }
    if r.capture_ms.is_some() {
        flags |= FLAG_HAS_CAPTURE;
    }
    body.put_u8(flags);
    body.put_u32_le(r.stale_frames);
    body.put_f64_le(r.age_ms);
    body.put_f64_le(r.pole_temp_c.unwrap_or(0.0));
    body.put_f64_le(r.capture_ms.unwrap_or(0.0));
    // Encode-side ceiling (see `MAX_WIRE_CLUSTERS`): clusters past the
    // limit are dropped rather than emitting an Oversize frame the
    // receiver must reject.
    let n = r.clusters.len().min(MAX_WIRE_CLUSTERS);
    body.put_u32_le(n as u32);
    for c in &r.clusters[..n] {
        body.put_f64_le(c.centroid.x);
        body.put_f64_le(c.centroid.y);
        body.put_f64_le(c.centroid.z);
        body.put_u32_le(c.points);
        body.put_f64_le(c.confidence);
    }
}

/// Per-cluster encoded size: 3 coordinates + points + confidence.
const CLUSTER_WIRE_LEN: usize = 3 * 8 + 4 + 8;

/// Encoded size of a v2 report body's fixed fields (everything before
/// the cluster records): pole id, seq, timestamp, count, three rung
/// bytes, flags, stale frames, age, temperature, capture time,
/// cluster count. (v1 bodies are 8 bytes shorter — no capture time.)
const REPORT_FIXED_LEN: usize = 4 + 8 + 8 + 4 + 1 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 4;

fn read_report(r: &mut Reader<'_>, version: u8) -> Result<PoleReport, WireError> {
    let pole_id = r.u32()?;
    let seq = r.u64()?;
    let timestamp_ms = r.u64()?;
    let count = r.u32()?;
    let health = health_from(r.u8()?)?;
    let eps_rung = eps_from(r.u8()?)?;
    let precision = precision_from(r.u8()?)?;
    let flags = r.u8()?;
    if flags & !known_report_flags(version) != 0 {
        return Err(WireError::Malformed("unknown report flags"));
    }
    let stale_frames = r.u32()?;
    let age_ms = r.f64()?;
    if age_ms.is_nan() || age_ms < 0.0 {
        return Err(WireError::Malformed("age_ms"));
    }
    let temp = r.f64()?;
    let pole_temp_c = if flags & FLAG_HAS_TEMP != 0 {
        if !temp.is_finite() {
            return Err(WireError::Malformed("pole_temp_c"));
        }
        Some(temp)
    } else {
        None
    };
    let capture_ms = if version >= 2 {
        let capture = r.f64()?;
        if flags & FLAG_HAS_CAPTURE != 0 {
            if !capture.is_finite() || capture < 0.0 {
                return Err(WireError::Malformed("capture_ms"));
            }
            Some(capture)
        } else {
            None
        }
    } else {
        None
    };
    let n = r.u32()? as usize;
    // Length sanity *before* allocating: a corrupt count cannot ask
    // for gigabytes.
    if n.checked_mul(CLUSTER_WIRE_LEN)
        .ok_or(WireError::Truncated)?
        > r.remaining()
    {
        return Err(WireError::Truncated);
    }
    let mut clusters = Vec::with_capacity(n);
    for _ in 0..n {
        let centroid = Point3::new(r.f64()?, r.f64()?, r.f64()?);
        if !centroid.is_finite() {
            return Err(WireError::Malformed("cluster centroid"));
        }
        let points = r.u32()?;
        let confidence = r.f64()?;
        if !(0.0..=1.0).contains(&confidence) {
            return Err(WireError::Malformed("cluster confidence"));
        }
        clusters.push(ClusterObservation {
            centroid,
            points,
            confidence,
        });
    }
    Ok(PoleReport {
        pole_id,
        seq,
        timestamp_ms,
        count,
        health,
        eps_rung,
        precision,
        held: flags & FLAG_HELD != 0,
        stale_frames,
        age_ms,
        pole_temp_c,
        capture_ms,
        clusters,
    })
}

// ---------------------------------------------------------------------------
// Telemetry body codec (wire v2).

/// Writes `name` length-prefixed, truncated to [`MAX_TELEMETRY_NAME`]
/// bytes at a character boundary.
fn put_name(body: &mut BytesMut, name: &str) {
    let mut end = name.len().min(MAX_TELEMETRY_NAME);
    while !name.is_char_boundary(end) {
        end -= 1;
    }
    body.put_u8(end as u8);
    body.put_slice(&name.as_bytes()[..end]);
}

fn read_name(r: &mut Reader<'_>) -> Result<String, WireError> {
    let len = r.u8()? as usize;
    if len > MAX_TELEMETRY_NAME {
        return Err(WireError::Malformed("telemetry name length"));
    }
    let bytes = r.take(len)?;
    std::str::from_utf8(bytes)
        .map(str::to_owned)
        .map_err(|_| WireError::Malformed("telemetry name utf-8"))
}

fn put_telemetry(body: &mut BytesMut, t: &TelemetryFrame) {
    body.put_u32_le(t.pole_id);
    body.put_u64_le(t.seq);
    body.put_u64_le(t.timestamp_ms);
    body.put_f64_le(t.window_ms);

    // Series are sorted by name, so truncation at the caps is
    // deterministic. Gauges must be finite on the wire (a registry
    // gauge that was never set reads NaN); histograms must be
    // internally consistent — both are filtered, not rejected, so an
    // encodable frame is always decodable.
    let counters: Vec<_> = t
        .snapshot
        .counters
        .iter()
        .take(MAX_TELEMETRY_COUNTERS)
        .collect();
    body.put_u32_le(counters.len() as u32);
    for (name, v) in counters {
        put_name(body, name);
        body.put_u64_le(*v);
    }

    let gauges: Vec<_> = t
        .snapshot
        .gauges
        .iter()
        .filter(|(_, v)| v.is_finite())
        .take(MAX_TELEMETRY_GAUGES)
        .collect();
    body.put_u32_le(gauges.len() as u32);
    for (name, v) in gauges {
        put_name(body, name);
        body.put_f64_le(*v);
    }

    let hists: Vec<_> = t
        .snapshot
        .histograms
        .iter()
        .filter(|h| telemetry_cells_consistent(h))
        .take(MAX_TELEMETRY_HISTOGRAMS)
        .collect();
    body.put_u32_le(hists.len() as u32);
    for h in hists {
        put_name(body, &h.name);
        body.put_u64_le(h.count);
        body.put_f64_le(h.sum_ms);
        body.put_f64_le(h.min_ms);
        body.put_f64_le(h.max_ms);
        body.put_u32_le(h.buckets.len() as u32);
        for &(idx, c) in &h.buckets {
            body.put_u8(idx);
            body.put_u64_le(c);
        }
    }
}

/// The invariants [`read_telemetry`] enforces, checked encode-side so
/// inconsistent cells are dropped instead of poisoning the receiver.
fn telemetry_cells_consistent(h: &HistogramCells) -> bool {
    if h.is_empty() {
        return false;
    }
    let ascending = h.buckets.windows(2).all(|w| w[0].0 < w[1].0);
    let occupied = h.buckets.iter().all(|&(idx, c)| idx < 64 && c > 0);
    let total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
    ascending
        && occupied
        && total == h.count
        && h.sum_ms.is_finite()
        && h.sum_ms >= 0.0
        && h.min_ms.is_finite()
        && h.max_ms.is_finite()
        && h.min_ms >= 0.0
        && h.min_ms <= h.max_ms
}

fn read_telemetry(r: &mut Reader<'_>) -> Result<TelemetryFrame, WireError> {
    let pole_id = r.u32()?;
    let seq = r.u64()?;
    let timestamp_ms = r.u64()?;
    let window_ms = r.f64()?;
    if !window_ms.is_finite() || window_ms < 0.0 {
        return Err(WireError::Malformed("window_ms"));
    }

    let n = r.u32()? as usize;
    if n > MAX_TELEMETRY_COUNTERS {
        return Err(WireError::Malformed("telemetry counter count"));
    }
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_name(r)?;
        counters.push((name, r.u64()?));
    }

    let n = r.u32()? as usize;
    if n > MAX_TELEMETRY_GAUGES {
        return Err(WireError::Malformed("telemetry gauge count"));
    }
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_name(r)?;
        let v = r.f64()?;
        if !v.is_finite() {
            return Err(WireError::Malformed("telemetry gauge value"));
        }
        gauges.push((name, v));
    }

    let n = r.u32()? as usize;
    if n > MAX_TELEMETRY_HISTOGRAMS {
        return Err(WireError::Malformed("telemetry histogram count"));
    }
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_name(r)?;
        let count = r.u64()?;
        let sum_ms = r.f64()?;
        let min_ms = r.f64()?;
        let max_ms = r.f64()?;
        let nb = r.u32()? as usize;
        if nb > 64 {
            return Err(WireError::Malformed("telemetry bucket count"));
        }
        let mut buckets = Vec::with_capacity(nb);
        for _ in 0..nb {
            let idx = r.u8()?;
            let c = r.u64()?;
            buckets.push((idx, c));
        }
        let cells = HistogramCells {
            name,
            count,
            sum_ms,
            min_ms,
            max_ms,
            buckets,
        };
        if !telemetry_cells_consistent(&cells) {
            return Err(WireError::Malformed("telemetry histogram cells"));
        }
        histograms.push(cells);
    }

    Ok(TelemetryFrame {
        pole_id,
        seq,
        timestamp_ms,
        window_ms,
        snapshot: TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        },
    })
}

// ---------------------------------------------------------------------------
// Frame codec.

/// Encodes one message into a complete wire frame.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut body = BytesMut::new();
    match msg {
        Message::Hello { pole_id } | Message::Bye { pole_id } => body.put_u32_le(*pole_id),
        Message::Report(r) => put_report(&mut body, r),
        Message::Heartbeat(h) => {
            body.put_u32_le(h.pole_id);
            body.put_u64_le(h.seq);
            body.put_u64_le(h.timestamp_ms);
        }
        Message::Telemetry(t) => put_telemetry(&mut body, t),
    }
    let body = body.freeze().to_vec();
    debug_assert!(body.len() <= MAX_BODY_LEN, "report exceeds MAX_BODY_LEN");

    let mut frame = BytesMut::with_capacity(HEADER_LEN + body.len() + CHECKSUM_LEN);
    frame.put_u32_le(MAGIC);
    frame.put_u8(VERSION);
    frame.put_u8(msg.type_byte());
    frame.put_u32_le(body.len() as u32);
    frame.put_slice(&body);
    let frame = frame.freeze().to_vec();
    let crc = crc32(&frame[4..]); // version..body
    let mut out = frame;
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes one complete frame from the front of `buf`.
///
/// Returns the message and the number of bytes consumed, or
/// `Ok(None)` when `buf` holds only a prefix of a frame (read more
/// and retry). Never panics.
pub fn decode(buf: &[u8]) -> Result<Option<(Message, usize)>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut r = Reader::new(buf);
    let magic = r.u32().expect("length checked");
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = r.u8().expect("length checked");
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    let msg_type = r.u8().expect("length checked");
    let body_len = r.u32().expect("length checked") as usize;
    if body_len > MAX_BODY_LEN {
        return Err(WireError::Oversize(body_len as u32));
    }
    let frame_len = HEADER_LEN + body_len + CHECKSUM_LEN;
    if buf.len() < frame_len {
        return Ok(None);
    }
    let expected = u32::from_le_bytes(
        buf[HEADER_LEN + body_len..frame_len]
            .try_into()
            .expect("4 bytes"),
    );
    let computed = crc32(&buf[4..HEADER_LEN + body_len]);
    if expected != computed {
        return Err(WireError::ChecksumMismatch { expected, computed });
    }

    let body = &buf[HEADER_LEN..HEADER_LEN + body_len];
    let mut r = Reader::new(body);
    let msg = match msg_type {
        1 => Message::Hello { pole_id: r.u32()? },
        2 => Message::Report(read_report(&mut r, version)?),
        3 => Message::Heartbeat(Heartbeat {
            pole_id: r.u32()?,
            seq: r.u64()?,
            timestamp_ms: r.u64()?,
        }),
        4 => Message::Bye { pole_id: r.u32()? },
        // Telemetry was introduced in v2; a v1 frame claiming it is
        // corruption, not compatibility.
        5 if version >= 2 => Message::Telemetry(read_telemetry(&mut r)?),
        other => return Err(WireError::UnknownMessageType(other)),
    };
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(Some((msg, frame_len)))
}

/// A decoded message plus, when requested, the exact wire bytes it
/// decoded from.
type DecodedFrame = (Message, Option<Vec<u8>>);

/// Incremental frame reassembly over a byte stream (TCP reads arrive
/// in arbitrary chunks).
///
/// After any decode error the stream's byte alignment is unknowable,
/// so the decoder poisons itself: every later call returns the same
/// error until [`FrameDecoder::reset`]. Connection handlers treat
/// that as "drop the socket".
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    poisoned: Option<WireError>,
}

/// Validates the frame header at the front of `buf` without touching
/// the body. `None` when the header is incomplete or valid.
fn frame_header_error(buf: &[u8]) -> Option<WireError> {
    if buf.len() < HEADER_LEN {
        return None;
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4"));
    if magic != MAGIC {
        return Some(WireError::BadMagic(magic));
    }
    let version = buf[4];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Some(WireError::UnsupportedVersion(version));
    }
    let body_len = u32::from_le_bytes(buf[6..10].try_into().expect("4"));
    if body_len as usize > MAX_BODY_LEN {
        return Some(WireError::Oversize(body_len));
    }
    None
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes received from the transport.
    ///
    /// The frame header at the front of the buffer is validated
    /// *here*, before its body is ever buffered: a hostile length
    /// prefix (say, claiming a 4 GiB body) poisons the decoder and
    /// frees the buffer immediately instead of reserving memory for
    /// bytes that can never decode. The total undrained buffer is
    /// bounded by [`MAX_PENDING_BYTES`] for the same reason.
    pub fn push(&mut self, bytes: &[u8]) {
        obs::incr("fleet.wire.bytes_received", bytes.len() as u64);
        if self.poisoned.is_some() {
            return;
        }
        if self.buf.len() + bytes.len() > MAX_PENDING_BYTES {
            self.poison_now(WireError::Backlog(self.buf.len() + bytes.len()));
            return;
        }
        self.buf.extend_from_slice(bytes);
        if let Some(err) = frame_header_error(&self.buf) {
            self.poison_now(err);
        }
    }

    /// Records the first stream error, counts it, and frees the
    /// buffer — poisoned bytes will never decode, so holding them is
    /// pure waste.
    fn poison_now(&mut self, err: WireError) {
        obs::incr("fleet.wire.decoder_poisonings", 1);
        match err {
            WireError::ChecksumMismatch { .. } => {
                obs::incr("fleet.wire.crc_failures", 1);
            }
            WireError::Oversize(_) | WireError::Backlog(_) => {
                obs::incr("fleet.wire.oversize_rejects", 1);
            }
            _ => {}
        }
        self.poisoned = Some(err);
        self.buf = Vec::new();
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete message, `Ok(None)` when more bytes are
    /// needed.
    pub fn next_message(&mut self) -> Result<Option<Message>, WireError> {
        Ok(self.next_inner(false)?.map(|(msg, _)| msg))
    }

    /// Like [`FrameDecoder::next_message`], but also returns the raw
    /// frame bytes the message decoded from — the capture layer
    /// records exactly what crossed the wire, not a re-encoding.
    pub fn next_message_and_frame(&mut self) -> Result<Option<(Message, Vec<u8>)>, WireError> {
        Ok(self
            .next_inner(true)?
            .map(|(msg, frame)| (msg, frame.expect("frame requested"))))
    }

    fn next_inner(&mut self, want_frame: bool) -> Result<Option<DecodedFrame>, WireError> {
        if let Some(err) = self.poisoned {
            obs::incr("fleet.wire.decode_errors", 1);
            return Err(err);
        }
        match decode(&self.buf) {
            Ok(Some((msg, consumed))) => {
                let frame = want_frame.then(|| self.buf[..consumed].to_vec());
                self.buf.drain(..consumed);
                // The next frame's header is at the front now; apply
                // the same eager judgement push applies.
                if let Some(err) = frame_header_error(&self.buf) {
                    self.poison_now(err);
                }
                Ok(Some((msg, frame)))
            }
            Ok(None) => Ok(None),
            Err(err) => {
                obs::incr("fleet.wire.decode_errors", 1);
                self.poison_now(err);
                Err(err)
            }
        }
    }

    /// Clears the buffer and the poison — for reuse on a *new*
    /// connection, never mid-stream.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.poisoned = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_report(clusters: usize) -> PoleReport {
        PoleReport {
            pole_id: 7,
            seq: 42,
            timestamp_ms: 123_456,
            count: clusters as u32,
            health: HealthState::Degraded,
            eps_rung: EpsRung::Cached,
            precision: PrecisionRung::Int8,
            held: true,
            stale_frames: 3,
            age_ms: 218.25,
            pole_temp_c: Some(48.5),
            capture_ms: Some(123_400.5),
            clusters: (0..clusters)
                .map(|i| ClusterObservation {
                    centroid: Point3::new(14.0 + i as f64, -1.25, -2.0),
                    points: 120 + i as u32,
                    confidence: 0.875,
                })
                .collect(),
        }
    }

    #[test]
    fn every_message_round_trips() {
        let messages = vec![
            Message::Hello { pole_id: 3 },
            Message::Report(sample_report(0)),
            Message::Report(sample_report(5)),
            Message::Heartbeat(Heartbeat {
                pole_id: 3,
                seq: 9,
                timestamp_ms: 1_000,
            }),
            Message::Bye { pole_id: 3 },
        ];
        for msg in messages {
            let bytes = encode(&msg);
            let (decoded, consumed) = decode(&bytes).unwrap().unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn infinity_age_round_trips() {
        let mut report = sample_report(1);
        report.age_ms = f64::INFINITY;
        report.pole_temp_c = None;
        let bytes = encode(&Message::Report(report.clone()));
        let (decoded, _) = decode(&bytes).unwrap().unwrap();
        assert_eq!(decoded, Message::Report(report));
    }

    #[test]
    fn partial_frames_ask_for_more() {
        let bytes = encode(&Message::Report(sample_report(3)));
        for cut in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode(&Message::Report(sample_report(2)));
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                match decode(&corrupt) {
                    Err(_) => {}
                    Ok(None) => {} // length field shrank/grew: more bytes requested
                    Ok(Some((msg, _))) => {
                        panic!("flip at byte {byte} bit {bit} decoded as {msg:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_cluster_lists_truncate_to_stay_decodable() {
        let report = sample_report(MAX_WIRE_CLUSTERS + 500);
        let bytes = encode(&Message::Report(report.clone()));
        assert!(bytes.len() <= HEADER_LEN + MAX_BODY_LEN + CHECKSUM_LEN);
        let (decoded, consumed) = decode(&bytes).expect("truncated frame decodes").unwrap();
        assert_eq!(consumed, bytes.len());
        match decoded {
            Message::Report(d) => {
                assert_eq!(d.count, report.count, "count survives truncation");
                assert_eq!(d.clusters.len(), MAX_WIRE_CLUSTERS);
                assert_eq!(d.clusters[..], report.clusters[..MAX_WIRE_CLUSTERS]);
            }
            other => panic!("expected a report, got {other:?}"),
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut bytes = encode(&Message::Hello { pole_id: 1 });
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(WireError::Oversize(_))));
    }

    #[test]
    fn decoder_reassembles_across_arbitrary_chunking() {
        let mut stream = Vec::new();
        let sent = vec![
            Message::Hello { pole_id: 1 },
            Message::Report(sample_report(4)),
            Message::Heartbeat(Heartbeat {
                pole_id: 1,
                seq: 1,
                timestamp_ms: 5,
            }),
            Message::Bye { pole_id: 1 },
        ];
        for m in &sent {
            stream.extend_from_slice(&encode(m));
        }
        // Deliver in 7-byte chunks.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in stream.chunks(7) {
            decoder.push(chunk);
            while let Some(msg) = decoder.next_message().unwrap() {
                got.push(msg);
            }
        }
        assert_eq!(got, sent);
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn every_frame_boundary_torn_at_every_offset() {
        // Satellite: the decoder must reassemble a multi-frame stream
        // no matter where the transport tears it — every single split
        // point of the concatenated stream, including splits inside
        // headers, bodies, and checksums.
        let sent = vec![
            Message::Hello { pole_id: 9 },
            Message::Report(sample_report(2)),
            Message::Telemetry(sample_telemetry()),
            Message::Bye { pole_id: 9 },
        ];
        let mut stream = Vec::new();
        for m in &sent {
            stream.extend_from_slice(&encode(m));
        }
        for cut in 0..=stream.len() {
            let mut decoder = FrameDecoder::new();
            let mut got = Vec::new();
            for part in [&stream[..cut], &stream[cut..]] {
                decoder.push(part);
                while let Some(msg) = decoder.next_message().unwrap() {
                    got.push(msg);
                }
            }
            assert_eq!(got, sent, "split at {cut} lost or reordered messages");
            assert_eq!(decoder.pending(), 0);
        }
        // Degenerate extreme: one byte per push.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            decoder.push(std::slice::from_ref(b));
            while let Some(msg) = decoder.next_message().unwrap() {
                got.push(msg);
            }
        }
        assert_eq!(got, sent);
    }

    #[test]
    fn hostile_length_prefix_poisons_on_push_without_buffering() {
        // A header claiming a 4 GiB body must be rejected the moment
        // the header is complete — nothing gets buffered for it.
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.push(VERSION);
        header.push(2); // Report
        header.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB body
        let mut decoder = FrameDecoder::new();
        decoder.push(&header);
        assert_eq!(decoder.pending(), 0, "hostile prefix must not buffer");
        assert!(matches!(
            decoder.next_message(),
            Err(WireError::Oversize(u32::MAX))
        ));
        // Later pushes are discarded, not buffered.
        decoder.push(&[0u8; 1024]);
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn undrained_backlog_poisons_instead_of_growing() {
        let frame = encode(&Message::Report(sample_report(MAX_WIRE_CLUSTERS)));
        let mut decoder = FrameDecoder::new();
        // Never drain: a firehosing peer fills the budget and the
        // decoder gives up rather than buffer without bound.
        let mut pushed = 0usize;
        while pushed <= MAX_PENDING_BYTES + frame.len() {
            decoder.push(&frame);
            pushed += frame.len();
        }
        assert!(matches!(decoder.next_message(), Err(WireError::Backlog(_))));
        assert_eq!(decoder.pending(), 0, "poisoning frees the buffer");
    }

    #[test]
    fn next_message_and_frame_returns_the_exact_wire_bytes() {
        let msgs = [
            Message::Hello { pole_id: 4 },
            Message::Report(sample_report(3)),
        ];
        let mut decoder = FrameDecoder::new();
        for m in &msgs {
            decoder.push(&encode(m));
        }
        for m in &msgs {
            let (msg, frame) = decoder.next_message_and_frame().unwrap().unwrap();
            assert_eq!(&msg, m);
            assert_eq!(frame, encode(m), "frame bytes match the encoding");
        }
        assert!(decoder.next_message_and_frame().unwrap().is_none());
    }

    #[test]
    fn decoder_poisons_after_an_error() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&[0xFF; HEADER_LEN]);
        let first = decoder.next_message().unwrap_err();
        assert!(matches!(first, WireError::BadMagic(_)));
        decoder.push(&encode(&Message::Hello { pole_id: 1 }));
        assert_eq!(decoder.next_message().unwrap_err(), first);
        decoder.reset();
        decoder.push(&encode(&Message::Hello { pole_id: 1 }));
        assert!(decoder.next_message().unwrap().is_some());
    }

    /// Encodes `r` exactly as a v1 sender would: version byte 1, no
    /// capture field, recomputed CRC.
    fn encode_v1_report(r: &PoleReport) -> Vec<u8> {
        assert!(r.capture_ms.is_none(), "v1 cannot carry capture_ms");
        let mut body = BytesMut::new();
        body.put_u32_le(r.pole_id);
        body.put_u64_le(r.seq);
        body.put_u64_le(r.timestamp_ms);
        body.put_u32_le(r.count);
        body.put_u8(health_byte(r.health));
        body.put_u8(eps_byte(r.eps_rung));
        body.put_u8(precision_byte(r.precision));
        let mut flags = 0u8;
        if r.held {
            flags |= FLAG_HELD;
        }
        if r.pole_temp_c.is_some() {
            flags |= FLAG_HAS_TEMP;
        }
        body.put_u8(flags);
        body.put_u32_le(r.stale_frames);
        body.put_f64_le(r.age_ms);
        body.put_f64_le(r.pole_temp_c.unwrap_or(0.0));
        body.put_u32_le(r.clusters.len() as u32);
        for c in &r.clusters {
            body.put_f64_le(c.centroid.x);
            body.put_f64_le(c.centroid.y);
            body.put_f64_le(c.centroid.z);
            body.put_u32_le(c.points);
            body.put_f64_le(c.confidence);
        }
        let body = body.freeze().to_vec();
        let mut frame = BytesMut::new();
        frame.put_u32_le(MAGIC);
        frame.put_u8(1); // wire v1
        frame.put_u8(2); // Report
        frame.put_u32_le(body.len() as u32);
        frame.put_slice(&body);
        let mut out = frame.freeze().to_vec();
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn v1_report_frames_still_decode() {
        let mut report = sample_report(3);
        report.capture_ms = None;
        let bytes = encode_v1_report(&report);
        let (decoded, consumed) = decode(&bytes).expect("v1 decodes").unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, Message::Report(report));
    }

    #[test]
    fn v1_frames_reject_v2_only_flags_and_types() {
        // A v1 frame carrying the capture flag is corruption.
        let report = sample_report(0);
        let mut bytes = encode_v1_report(&PoleReport {
            capture_ms: None,
            ..report.clone()
        });
        let flags_at = HEADER_LEN + 4 + 8 + 8 + 4 + 3;
        bytes[flags_at] |= FLAG_HAS_CAPTURE;
        let crc = crc32(&bytes[4..bytes.len() - CHECKSUM_LEN]);
        let len = bytes.len();
        bytes[len - CHECKSUM_LEN..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode(&bytes),
            Err(WireError::Malformed("unknown report flags"))
        );

        // And so is a v1 frame claiming the v2-only Telemetry type.
        let mut bytes = encode(&Message::Telemetry(sample_telemetry()));
        bytes[4] = 1; // version byte
        let body_len = bytes.len() - HEADER_LEN - CHECKSUM_LEN;
        let crc = crc32(&bytes[4..HEADER_LEN + body_len]);
        let len = bytes.len();
        bytes[len - CHECKSUM_LEN..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&bytes), Err(WireError::UnknownMessageType(5)));
    }

    fn sample_telemetry() -> TelemetryFrame {
        let reg = obs::Registry::new();
        reg.incr("pole.frames", 240);
        reg.incr("pole.frames_held", 3);
        reg.set_gauge("pole.temp_c", 51.25);
        reg.set_gauge("pole.queue_depth", 2.0);
        for ms in [4.0, 4.5, 5.0, 80.0] {
            reg.observe_ms("pole.frame", ms);
        }
        TelemetryFrame {
            pole_id: 7,
            seq: 240,
            timestamp_ms: 60_000,
            window_ms: 5_000.0,
            snapshot: reg.telemetry(),
        }
    }

    #[test]
    fn telemetry_round_trips() {
        let msg = Message::Telemetry(sample_telemetry());
        let bytes = encode(&msg);
        let (decoded, consumed) = decode(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, msg);
        assert_eq!(decoded.pole_id(), 7);
    }

    #[test]
    fn telemetry_encoder_filters_what_the_decoder_rejects() {
        let mut frame = sample_telemetry();
        // A never-set gauge reads NaN; an empty histogram has no
        // occupancy. Neither may cross the wire.
        frame.snapshot.gauges.push(("pole.unset".into(), f64::NAN));
        frame
            .snapshot
            .histograms
            .push(obs::HistogramCells::empty("pole.quiet"));
        let bytes = encode(&Message::Telemetry(frame.clone()));
        let (decoded, _) = decode(&bytes).unwrap().unwrap();
        match decoded {
            Message::Telemetry(t) => {
                assert!(t.snapshot.gauge("pole.unset").is_none());
                assert!(t.snapshot.histogram("pole.quiet").is_none());
                assert_eq!(t.snapshot.counters, frame.snapshot.counters);
            }
            other => panic!("expected telemetry, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_truncates_at_the_wire_caps() {
        let mut frame = sample_telemetry();
        frame.snapshot.counters = (0..MAX_TELEMETRY_COUNTERS + 50)
            .map(|i| (format!("c{i:04}"), i as u64 + 1))
            .collect();
        let long_name = "n".repeat(MAX_TELEMETRY_NAME + 40);
        frame.snapshot.gauges = vec![(long_name.clone(), 1.5)];
        let bytes = encode(&Message::Telemetry(frame));
        assert!(bytes.len() <= HEADER_LEN + MAX_BODY_LEN + CHECKSUM_LEN);
        let (decoded, _) = decode(&bytes).unwrap().unwrap();
        match decoded {
            Message::Telemetry(t) => {
                assert_eq!(t.snapshot.counters.len(), MAX_TELEMETRY_COUNTERS);
                assert_eq!(t.snapshot.counters[0], ("c0000".into(), 1));
                assert_eq!(
                    t.snapshot.gauges[0].0,
                    long_name[..MAX_TELEMETRY_NAME],
                    "long names truncate, not reject"
                );
            }
            other => panic!("expected telemetry, got {other:?}"),
        }
    }

    fn arb_cluster() -> impl Strategy<Value = ClusterObservation> {
        (
            (-500.0f64..500.0, -500.0f64..500.0, -10.0f64..10.0),
            0u32..5_000,
            0.0f64..1.0,
        )
            .prop_map(|((x, y, z), points, confidence)| ClusterObservation {
                centroid: Point3::new(x, y, z),
                points,
                confidence,
            })
    }

    fn arb_report() -> impl Strategy<Value = PoleReport> {
        // The vendored proptest tops out at 5-element tuples, so the
        // fields are grouped: identity, ladder state, hold state,
        // trace context.
        let identity = (0u32..u32::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u32..10_000);
        let ladder = (0u8..3, 0u8..3, 0u8..2, 0u8..2);
        let hold = (0u32..1_000, 0.0f64..1e9, 0u8..2, -40.0f64..90.0);
        let trace = (0u8..2, 0.0f64..1e12);
        (
            identity,
            ladder,
            hold,
            trace,
            proptest::collection::vec(arb_cluster(), 0..12),
        )
            .prop_map(
                |(
                    (pole_id, seq, timestamp_ms, count),
                    (health, eps, precision, held),
                    (stale_frames, age_ms, has_temp, temp),
                    (has_capture, capture_ms),
                    clusters,
                )| {
                    PoleReport {
                        pole_id,
                        seq,
                        timestamp_ms,
                        count,
                        health: health_from(health).unwrap(),
                        eps_rung: eps_from(eps).unwrap(),
                        precision: precision_from(precision).unwrap(),
                        held: held == 1,
                        stale_frames,
                        age_ms,
                        pole_temp_c: (has_temp == 1).then_some(temp),
                        capture_ms: (has_capture == 1).then_some(capture_ms),
                        clusters,
                    }
                },
            )
    }

    fn arb_telemetry() -> impl Strategy<Value = TelemetryFrame> {
        // Build through a real scoped registry, which yields exactly
        // the sorted, internally consistent snapshots agents emit.
        let counters = proptest::collection::vec((0usize..24, 1u64..1_000_000), 0..24);
        let gauges = proptest::collection::vec((0usize..12, -1e6f64..1e6), 0..12);
        let hists = proptest::collection::vec(
            (0usize..6, proptest::collection::vec(0.0f64..1e7, 1..24)),
            0..6,
        );
        let header = (0u32..u32::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0.0f64..1e9);
        (counters, gauges, hists, header).prop_map(
            |(counters, gauges, hists, (pole_id, seq, timestamp_ms, window_ms))| {
                let reg = obs::Registry::new();
                for (i, v) in counters {
                    reg.incr(&format!("counter.{i:02}"), v);
                }
                for (i, v) in gauges {
                    reg.set_gauge(&format!("gauge.{i:02}"), v);
                }
                for (i, samples) in hists {
                    for ms in samples {
                        reg.observe_ms(&format!("hist.{i:02}"), ms);
                    }
                }
                TelemetryFrame {
                    pole_id,
                    seq,
                    timestamp_ms,
                    window_ms,
                    snapshot: reg.telemetry(),
                }
            },
        )
    }

    proptest! {
        #[test]
        fn telemetry_round_trip(frame in arb_telemetry()) {
            let msg = Message::Telemetry(frame);
            let bytes = encode(&msg);
            let (decoded, consumed) = decode(&bytes).unwrap().unwrap();
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded, msg);
        }

        #[test]
        fn decode_never_panics_on_corrupted_telemetry(
            frame in arb_telemetry(),
            flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..8),
            cut in 0usize..4096,
        ) {
            let mut bytes = encode(&Message::Telemetry(frame));
            for (pos, bit) in flips {
                let len = bytes.len();
                bytes[pos % len] ^= 1 << bit;
            }
            bytes.truncate(cut.min(bytes.len()));
            let _ = decode(&bytes);
        }
    }

    proptest! {
        #[test]
        fn report_round_trip(report in arb_report()) {
            let msg = Message::Report(report);
            let bytes = encode(&msg);
            let (decoded, consumed) = decode(&bytes).unwrap().unwrap();
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded, msg);
        }

        #[test]
        fn decode_never_panics_on_noise(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
            let _ = decode(&bytes);
        }

        #[test]
        fn decoder_survives_interleaved_partial_writes(
            reports in proptest::collection::vec(arb_report(), 1..5),
            chunk_lens in proptest::collection::vec(1usize..96, 1..64),
        ) {
            // Satellite: random stream partitions — the decoder must
            // produce the identical message sequence whatever chunk
            // boundaries the transport imposes, draining after every
            // push (interleaved partial writes).
            let sent: Vec<Message> = reports.into_iter().map(Message::Report).collect();
            let mut stream = Vec::new();
            for m in &sent {
                stream.extend_from_slice(&encode(m));
            }
            let mut decoder = FrameDecoder::new();
            let mut got = Vec::new();
            let mut pos = 0usize;
            let mut lens = chunk_lens.iter().cycle();
            while pos < stream.len() {
                let n = (*lens.next().unwrap()).min(stream.len() - pos);
                decoder.push(&stream[pos..pos + n]);
                pos += n;
                while let Some(msg) = decoder.next_message().unwrap() {
                    got.push(msg);
                }
            }
            prop_assert_eq!(got, sent);
            prop_assert_eq!(decoder.pending(), 0);
        }

        #[test]
        fn decode_never_panics_on_corrupted_frames(
            report in arb_report(),
            flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..8),
            cut in 0usize..4096,
        ) {
            let mut bytes = encode(&Message::Report(report));
            for (pos, bit) in flips {
                let len = bytes.len();
                bytes[pos % len] ^= 1 << bit;
            }
            bytes.truncate(cut.min(bytes.len()));
            let _ = decode(&bytes);
        }
    }
}
