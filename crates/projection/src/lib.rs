//! Point-cloud standardisation and 2-D projection for HAWC (§V).
//!
//! Two stages sit between a clustered point cloud and the CNN:
//!
//! 1. **Noise-controlled up-sampling** ([`upsample_with_pool`]) — pads every cloud
//!    to a fixed perfect-square size `N'_max = ceil(sqrt(N_max))²` by
//!    drawing extra points from the pooled "Object" dataset (or, for the
//!    Table III ablation, from a Gaussian).
//! 2. **Projection** ([`project`]) — converts the fixed-size cloud into a
//!    stacked `C × D × D` image. The paper's **height-aware projection**
//!    (HAP) emits 7 channels: the top view augmented with each point's
//!    k-NN height variation `(x, y, σ_z)`, plus front `(y, z)` and side
//!    `(x, z)` views. The alternatives of Fig. 9 — bird's-eye (BEV),
//!    range view (RV), density-aware (DA) and plain three-view (TV) —
//!    are implemented for comparison.
//!
//! Projections use the paper's *direct* list-reshape (each "pixel" is one
//! point's coordinates), not an occupancy grid, which §V argues fails on
//! sparse clouds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod upsample;
mod views;

pub use upsample::{upsample_gaussian, upsample_with_pool, UpsampleError, DEFAULT_TARGET_POINTS};
pub use views::{
    project, project_batch, project_batch_threads, ProjectionConfig, ProjectionMethod,
};

/// Computes the fixed input size from the largest training cloud:
/// `N'_max = ceil(sqrt(N_max))²` (§V), so the flat point list reshapes
/// into a square image.
pub fn target_points(max_cloud_size: usize) -> usize {
    let side = (max_cloud_size as f64).sqrt().ceil() as usize;
    side.max(1) * side.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_is_next_perfect_square() {
        assert_eq!(target_points(324), 324); // 18² exactly (the paper's size)
        assert_eq!(target_points(300), 324);
        assert_eq!(target_points(325), 361);
        assert_eq!(target_points(1), 1);
        assert_eq!(target_points(0), 1);
        assert_eq!(target_points(2), 4);
    }
}
