//! 2-D view generation from fixed-size point clouds.

use geom::{KdTree, KnnScratch, Point3};
use nn::Tensor;
use serde::{Deserialize, Serialize};

/// The projection methods compared in Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProjectionMethod {
    /// Height-aware projection (the paper's method): top view with the
    /// k-NN height-variation channel, plus front and side views —
    /// `D × D × 7`.
    Hap,
    /// Plain three-view (HAP without the height channel) — `D × D × 6`.
    ThreeView,
    /// Bird's-eye view: top view only — `D × D × 2`.
    Bev,
    /// Range view: spherical coordinates `(azimuth, elevation, range)` —
    /// `D × D × 3`.
    RangeView,
    /// Density-aware: top view plus each point's neighbourhood density —
    /// `D × D × 3`.
    DensityAware,
}

impl ProjectionMethod {
    /// Number of stacked channels the method produces.
    pub fn channels(&self) -> usize {
        match self {
            ProjectionMethod::Hap => 7,
            ProjectionMethod::ThreeView => 6,
            ProjectionMethod::Bev => 2,
            ProjectionMethod::RangeView => 3,
            ProjectionMethod::DensityAware => 3,
        }
    }

    /// All methods, for the Fig. 9 sweep.
    pub const ALL: [ProjectionMethod; 5] = [
        ProjectionMethod::Hap,
        ProjectionMethod::ThreeView,
        ProjectionMethod::Bev,
        ProjectionMethod::RangeView,
        ProjectionMethod::DensityAware,
    ];
}

impl std::fmt::Display for ProjectionMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ProjectionMethod::Hap => "HAP",
            ProjectionMethod::ThreeView => "TV",
            ProjectionMethod::Bev => "BEV",
            ProjectionMethod::RangeView => "RV",
            ProjectionMethod::DensityAware => "DA",
        })
    }
}

/// Projection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectionConfig {
    /// Which view set to generate.
    pub method: ProjectionMethod,
    /// Neighbours used for the HAP height-variation channel (§V's `k`).
    pub k_neighbors: usize,
    /// Radius for the density-aware channel.
    pub density_radius: f64,
    /// Subtract the cloud's x/y centroid before projecting, making the
    /// views translation-invariant along the walkway. The paper projects
    /// absolute coordinates, but it also trains on ~12k captures; with
    /// smaller synthetic sets the classifier cannot marginalise distance
    /// out on its own (documented in DESIGN.md).
    pub center_xy: bool,
    /// Sort points by height before the list reshape, giving the
    /// projected "image" a deterministic bottom-to-top structure
    /// (consistent with the paper's height-first philosophy).
    pub sort_by_z: bool,
}

impl Default for ProjectionConfig {
    fn default() -> Self {
        ProjectionConfig {
            method: ProjectionMethod::Hap,
            k_neighbors: 8,
            density_radius: 0.3,
            center_xy: true,
            sort_by_z: true,
        }
    }
}

/// Projects a fixed-size cloud into a stacked `[channels, D, D]` tensor.
///
/// The cloud length must be a perfect square `D²` (guaranteed by the
/// up-sampling stage). Each channel is the flat point list reshaped to
/// `D × D` — the paper's direct projection.
///
/// # Panics
///
/// Panics if the cloud length is not a perfect square.
pub fn project(points: &[Point3], cfg: &ProjectionConfig) -> Tensor {
    let n = points.len();
    let d = (n as f64).sqrt().round() as usize;
    assert_eq!(
        d * d,
        n,
        "cloud size {n} is not a perfect square — up-sample first"
    );
    // The range view is sensor-relative by construction; centering would
    // destroy its spherical semantics.
    let center_xy = cfg.center_xy && cfg.method != ProjectionMethod::RangeView;
    let mut owned;
    let points: &[Point3] = if center_xy || cfg.sort_by_z {
        owned = points.to_vec();
        if cfg.sort_by_z {
            owned.sort_by(|a, b| a.z.partial_cmp(&b.z).unwrap_or(std::cmp::Ordering::Equal));
        }
        if center_xy && !owned.is_empty() {
            let cx = owned.iter().map(|p| p.x).sum::<f64>() / owned.len() as f64;
            let cy = owned.iter().map(|p| p.y).sum::<f64>() / owned.len() as f64;
            for p in &mut owned {
                p.x -= cx;
                p.y -= cy;
            }
        }
        &owned
    } else {
        points
    };
    let c = cfg.method.channels();
    let mut data = vec![0.0f32; c * n];
    let mut write = |ch: usize, vals: &dyn Fn(usize) -> f64| {
        for (i, slot) in data[ch * n..(ch + 1) * n].iter_mut().enumerate() {
            *slot = vals(i) as f32;
        }
    };
    match cfg.method {
        ProjectionMethod::Hap => {
            let sigma = height_variation(points, cfg.k_neighbors);
            write(0, &|i| points[i].x);
            write(1, &|i| points[i].y);
            write(2, &|i| sigma[i]);
            write(3, &|i| points[i].y);
            write(4, &|i| points[i].z);
            write(5, &|i| points[i].x);
            write(6, &|i| points[i].z);
        }
        ProjectionMethod::ThreeView => {
            write(0, &|i| points[i].x);
            write(1, &|i| points[i].y);
            write(2, &|i| points[i].y);
            write(3, &|i| points[i].z);
            write(4, &|i| points[i].x);
            write(5, &|i| points[i].z);
        }
        ProjectionMethod::Bev => {
            write(0, &|i| points[i].x);
            write(1, &|i| points[i].y);
        }
        ProjectionMethod::RangeView => {
            write(0, &|i| points[i].y.atan2(points[i].x)); // azimuth
            write(1, &|i| {
                let r_xy = points[i].horizontal_range();
                points[i].z.atan2(r_xy) // elevation
            });
            write(2, &|i| points[i].norm()); // range
        }
        ProjectionMethod::DensityAware => {
            let density = local_density(points, cfg.density_radius);
            write(0, &|i| points[i].x);
            write(1, &|i| points[i].y);
            write(2, &|i| density[i]);
        }
    }
    Tensor::from_vec(data, &[c, d, d])
}

/// Projects a batch of fixed-size clouds into `[N, channels, D, D]`.
///
/// # Panics
///
/// Panics if `clusters` is empty or the clouds disagree in size.
pub fn project_batch(clusters: &[Vec<Point3>], cfg: &ProjectionConfig) -> Tensor {
    project_batch_threads(clusters, cfg, 1)
}

/// [`project_batch`] with the per-cloud projections fanned out over up
/// to `threads` worker threads (`0` = one per core).
///
/// Each cloud's projection depends only on that cloud, and the per-cloud
/// tensors are re-stacked in input order, so the result is bit-identical
/// to the serial [`project_batch`] for any thread count.
///
/// # Panics
///
/// Panics if `clusters` is empty or the clouds disagree in size.
pub fn project_batch_threads(
    clusters: &[Vec<Point3>],
    cfg: &ProjectionConfig,
    threads: usize,
) -> Tensor {
    assert!(!clusters.is_empty(), "cannot project an empty batch");
    let tensors = nn::par_map_ordered(clusters, threads, |c| {
        let t = project(c, cfg);
        let s = t.shape().to_vec();
        t.reshape(&[1, s[0], s[1], s[2]])
    });
    Tensor::stack(&tensors)
}

/// Per-point height variation: the standard deviation of the
/// z-coordinates of each point's `k` nearest neighbours (§V), via a
/// single KD-tree query per point.
fn height_variation(points: &[Point3], k: usize) -> Vec<f64> {
    if points.len() < 2 || k == 0 {
        return vec![0.0; points.len()];
    }
    let tree = KdTree::build(points);
    let k = (k + 1).min(points.len());
    let mut scratch = KnnScratch::with_capacity(k);
    let mut hits = Vec::with_capacity(k);
    points
        .iter()
        .map(|&p| {
            tree.knn_into(p, k, &mut scratch, &mut hits);
            let n = hits.len() as f64;
            let mean = hits.iter().map(|&(i, _)| points[i].z).sum::<f64>() / n;
            (hits
                .iter()
                .map(|&(i, _)| (points[i].z - mean) * (points[i].z - mean))
                .sum::<f64>()
                / n)
                .sqrt()
        })
        .collect()
}

/// Per-point neighbour count within `radius` (the density-aware channel).
fn local_density(points: &[Point3], radius: f64) -> Vec<f64> {
    if points.is_empty() {
        return Vec::new();
    }
    let tree = KdTree::build(points);
    let mut hits = Vec::new();
    points
        .iter()
        .map(|&p| {
            tree.within_into(p, radius, &mut hits);
            (hits.len() - 1) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 16-point "cloud" (4×4 image) with varying heights.
    fn cloud16() -> Vec<Point3> {
        (0..16)
            .map(|i| {
                Point3::new(
                    15.0 + i as f64 * 0.05,
                    (i % 4) as f64 * 0.1,
                    -2.6 + (i / 4) as f64 * 0.5,
                )
            })
            .collect()
    }

    /// Raw (paper-faithful) mode: no centering, no sorting.
    fn raw(method: ProjectionMethod) -> ProjectionConfig {
        ProjectionConfig {
            method,
            center_xy: false,
            sort_by_z: false,
            ..Default::default()
        }
    }

    #[test]
    fn hap_shape_and_channel_layout() {
        let t = project(&cloud16(), &raw(ProjectionMethod::Hap));
        assert_eq!(t.shape(), &[7, 4, 4]);
        // Channel 0 is x of point 0 at pixel (0,0).
        assert!((t.at(&[0, 0, 0]) - 15.0).abs() < 1e-6);
        // Channel 4 is z (front view): first point's z.
        assert!((t.at(&[4, 0, 0]) - (-2.6)).abs() < 1e-6);
        // Pixel (1,2) is point index 6.
        assert!((t.at(&[1, 1, 2]) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn all_methods_produce_expected_channels() {
        for m in ProjectionMethod::ALL {
            let t = project(
                &cloud16(),
                &ProjectionConfig {
                    method: m,
                    ..Default::default()
                },
            );
            assert_eq!(t.shape(), &[m.channels(), 4, 4], "{m}");
            assert!(t.data().iter().all(|v| v.is_finite()), "{m}");
        }
    }

    #[test]
    fn hap_sigma_channel_reflects_height_spread() {
        // A flat plate has zero height variation; a vertical column has a
        // lot.
        let flat: Vec<Point3> = (0..16)
            .map(|i| Point3::new(15.0 + (i % 4) as f64 * 0.1, (i / 4) as f64 * 0.1, -2.0))
            .collect();
        let column: Vec<Point3> = (0..16)
            .map(|i| Point3::new(15.0, 0.0, -2.6 + i as f64 * 0.1))
            .collect();
        let cfg = raw(ProjectionMethod::Hap);
        let tf = project(&flat, &cfg);
        let tc = project(&column, &cfg);
        let sigma_sum = |t: &Tensor| -> f32 { (0..16).map(|i| t.data()[2 * 16 + i]).sum() };
        assert!(sigma_sum(&tf) < 1e-6);
        assert!(sigma_sum(&tc) > 0.5);
    }

    #[test]
    fn bev_drops_height_entirely() {
        // Two clouds differing only in z produce identical BEV tensors —
        // the §II critique ("BEV lacks vertical information").
        let low = cloud16();
        let high: Vec<Point3> = low
            .iter()
            .map(|p| Point3::new(p.x, p.y, p.z + 1.5))
            .collect();
        let cfg = raw(ProjectionMethod::Bev);
        assert_eq!(project(&low, &cfg).data(), project(&high, &cfg).data());
        // HAP distinguishes them.
        let hap = raw(ProjectionMethod::Hap);
        assert_ne!(project(&low, &hap).data(), project(&high, &hap).data());
    }

    #[test]
    fn range_view_matches_spherical_math() {
        let pts = vec![Point3::new(3.0, 4.0, 0.0); 4];
        let t = project(&pts, &raw(ProjectionMethod::RangeView));
        assert!((t.at(&[2, 0, 0]) - 5.0).abs() < 1e-6); // range
        assert!((t.at(&[0, 0, 0]) - (4.0f32 / 3.0).atan()).abs() < 1e-6); // azimuth
        assert!(t.at(&[1, 0, 0]).abs() < 1e-6); // elevation 0
    }

    #[test]
    fn density_channel_counts_neighbours() {
        // 4 coincident points: each sees 3 neighbours within any radius.
        let pts = vec![Point3::new(1.0, 1.0, 1.0); 4];
        let t = project(&pts, &raw(ProjectionMethod::DensityAware));
        for i in 0..4 {
            assert_eq!(t.data()[2 * 4 + i], 3.0);
        }
    }

    #[test]
    fn batch_projection_stacks() {
        let cfg = ProjectionConfig::default();
        let batch = project_batch(&[cloud16(), cloud16()], &cfg);
        assert_eq!(batch.shape(), &[2, 7, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn non_square_cloud_panics() {
        let pts = vec![Point3::ZERO; 15];
        let _ = project(&pts, &ProjectionConfig::default());
    }

    #[test]
    fn single_point_cloud_projects() {
        let t = project(&[Point3::new(1.0, 2.0, 3.0)], &ProjectionConfig::default());
        assert_eq!(t.shape(), &[7, 1, 1]);
        // σ of a single point is 0.
        assert_eq!(t.at(&[2, 0, 0]), 0.0);
    }
}
