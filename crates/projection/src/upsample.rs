//! Noise-controlled up-sampling (§V).

use dataset::ObjectPool;
use geom::Point3;
use rand::Rng;

/// The paper's fixed cloud size: every sample is `324 × 3`, i.e. `18²`
/// points (§VII-A).
pub const DEFAULT_TARGET_POINTS: usize = 324;

/// Errors from up-sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpsampleError {
    /// `target` is not a perfect square (the reshape needs `D × D`).
    NotASquare(usize),
    /// The object pool was empty but padding points were required.
    EmptyPool,
}

impl std::fmt::Display for UpsampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpsampleError::NotASquare(n) => {
                write!(f, "up-sampling target {n} is not a perfect square")
            }
            UpsampleError::EmptyPool => write!(f, "object pool is empty"),
        }
    }
}

impl std::error::Error for UpsampleError {}

fn check_square(target: usize) -> Result<(), UpsampleError> {
    let side = (target as f64).sqrt().round() as usize;
    if side * side != target || target == 0 {
        return Err(UpsampleError::NotASquare(target));
    }
    Ok(())
}

/// Pads `points` to exactly `target` points by sampling from the pooled
/// "Object" dataset — the paper's noise-controlled up-sampling. Clouds
/// larger than `target` are randomly subsampled (deployment can meet
/// clusters bigger than anything in the training set).
///
/// # Errors
///
/// [`UpsampleError::NotASquare`] if `target` has no integer square root;
/// [`UpsampleError::EmptyPool`] if padding is needed from an empty pool.
pub fn upsample_with_pool<R: Rng + ?Sized>(
    points: &[Point3],
    target: usize,
    pool: &ObjectPool,
    rng: &mut R,
) -> Result<Vec<Point3>, UpsampleError> {
    check_square(target)?;
    let mut out: Vec<Point3> = points.to_vec();
    if out.len() > target {
        subsample_in_place(&mut out, target, rng);
        return Ok(out);
    }
    let missing = target - out.len();
    if missing > 0 {
        if pool.is_empty() {
            return Err(UpsampleError::EmptyPool);
        }
        // Express the noise relative to the pool's own x/y centroid and
        // re-anchor it at the cluster's centroid: the padding keeps the
        // object data's shape and height statistics (what Table III's
        // ablation is about) while staying position-independent, so a
        // cluster at 14 m and one at 33 m receive identically distributed
        // noise.
        let (ax, ay) = anchor_xy(&out);
        let (px, py) = pool.centroid_xy();
        out.extend(
            pool.sample_points(rng, missing)
                .into_iter()
                .map(|p| Point3::new(p.x - px + ax, p.y - py + ay, p.z)),
        );
    }
    Ok(out)
}

fn anchor_xy(points: &[Point3]) -> (f64, f64) {
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let n = points.len() as f64;
    (
        points.iter().map(|p| p.x).sum::<f64>() / n,
        points.iter().map(|p| p.y).sum::<f64>() / n,
    )
}

/// Uniform subsample without replacement down to `target`, preserving the
/// surviving points' original order.
///
/// A partial Fisher–Yates over an index permutation draws the `target`
/// survivors in `O(n)`; sorting the chosen indices restores input order.
/// The loop this replaced (`out.remove(rng.gen_range(..))` until small
/// enough) was `O((n − target) · n)` — quadratic whenever a dense frame
/// handed the classifier clusters several times the 324-point budget.
fn subsample_in_place<R: Rng + ?Sized>(out: &mut Vec<Point3>, target: usize, rng: &mut R) {
    let n = out.len();
    if n <= target {
        return;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..target {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    let keep = &mut idx[..target];
    keep.sort_unstable();
    for (slot, &src) in keep.iter().enumerate() {
        out[slot] = out[src];
    }
    out.truncate(target);
}

/// The Table III ablation: pads with synthetic Gaussian points
/// (`μ = 0`, per-axis standard deviation `sigma`) instead of object data.
///
/// # Errors
///
/// [`UpsampleError::NotASquare`] if `target` has no integer square root.
pub fn upsample_gaussian<R: Rng + ?Sized>(
    points: &[Point3],
    target: usize,
    sigma: f64,
    rng: &mut R,
) -> Result<Vec<Point3>, UpsampleError> {
    check_square(target)?;
    let mut out: Vec<Point3> = points.to_vec();
    subsample_in_place(&mut out, target, rng);
    // "Fixed mean μ = 0" (§VII-B) reads in cluster-normalised
    // coordinates: anchor the synthetic points at the cluster centroid on
    // all three axes so the comparison against object-data padding is
    // apples-to-apples.
    let (ax, ay) = anchor_xy(&out);
    let az = if out.is_empty() {
        0.0
    } else {
        out.iter().map(|p| p.z).sum::<f64>() / out.len() as f64
    };
    while out.len() < target {
        out.push(Point3::new(
            ax + gaussian(rng) * sigma,
            ay + gaussian(rng) * sigma,
            az + gaussian(rng) * sigma,
        ));
    }
    Ok(out)
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13)
    }

    fn pool() -> ObjectPool {
        ObjectPool::new(
            (0..200)
                .map(|i| Point3::new(20.0, i as f64 * 0.01, -2.5))
                .collect(),
        )
    }

    fn human(n: usize) -> Vec<Point3> {
        (0..n)
            .map(|i| Point3::new(15.0, 0.0, -2.6 + i as f64 * 0.01))
            .collect()
    }

    #[test]
    fn pads_to_target_with_pool_points() {
        let pts = human(100);
        let up = upsample_with_pool(&pts, 324, &pool(), &mut rng()).unwrap();
        assert_eq!(up.len(), 324);
        // Original points kept, in order, at the front.
        assert_eq!(&up[..100], &pts[..]);
        // Padding points keep the pool's z but are re-anchored at the
        // cluster centroid (x = 15 here, since the pool is a vertical
        // fence at its own centroid in x).
        assert!(up[100..].iter().all(|p| (p.x - 15.0).abs() < 1e-9));
        assert!(up[100..].iter().all(|p| p.z == -2.5));
    }

    #[test]
    fn exact_size_is_untouched() {
        let pts = human(324);
        let up = upsample_with_pool(&pts, 324, &pool(), &mut rng()).unwrap();
        assert_eq!(up, pts);
    }

    #[test]
    fn oversize_clouds_are_subsampled() {
        let pts = human(500);
        let up = upsample_with_pool(&pts, 324, &pool(), &mut rng()).unwrap();
        assert_eq!(up.len(), 324);
        // Every survivor is an original point.
        assert!(up.iter().all(|p| pts.contains(p)));
    }

    #[test]
    fn subsample_preserves_original_order() {
        // `human` clouds are strictly increasing in z, so order
        // preservation is equivalent to the z sequence staying sorted.
        let pts = human(2_000);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let up = upsample_with_pool(&pts, 324, &pool(), &mut rng).unwrap();
            assert_eq!(up.len(), 324);
            assert!(up.windows(2).all(|w| w[0].z < w[1].z));
            assert!(up.iter().all(|p| pts.contains(p)));
        }
    }

    #[test]
    fn subsample_is_deterministic_per_seed_and_handles_large_clouds() {
        // 50k points through the old remove()-loop was ~15M element moves
        // per cluster; the Fisher–Yates path is linear. This doubles as a
        // per-seed determinism pin for the subsample branch.
        let pts = human(50_000);
        let a = upsample_with_pool(&pts, 324, &pool(), &mut StdRng::seed_from_u64(7)).unwrap();
        let b = upsample_with_pool(&pts, 324, &pool(), &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
        let c = upsample_with_pool(&pts, 324, &pool(), &mut StdRng::seed_from_u64(8)).unwrap();
        assert_ne!(a, c);

        // The Gaussian-ablation path shares the same subsample helper.
        let g1 = upsample_gaussian(&pts, 324, 3.0, &mut StdRng::seed_from_u64(7)).unwrap();
        let g2 = upsample_gaussian(&pts, 324, 3.0, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(g1, g2);
        assert!(g1.windows(2).all(|w| w[0].z < w[1].z));
    }

    #[test]
    fn non_square_target_rejected() {
        let err = upsample_with_pool(&human(10), 325, &pool(), &mut rng()).unwrap_err();
        assert_eq!(err, UpsampleError::NotASquare(325));
        assert!(upsample_gaussian(&human(10), 0, 3.0, &mut rng()).is_err());
    }

    #[test]
    fn empty_pool_rejected_only_when_needed() {
        let empty = ObjectPool::default();
        assert_eq!(
            upsample_with_pool(&human(10), 324, &empty, &mut rng()).unwrap_err(),
            UpsampleError::EmptyPool
        );
        // No padding needed: empty pool is fine.
        assert!(upsample_with_pool(&human(324), 324, &empty, &mut rng()).is_ok());
    }

    #[test]
    fn gaussian_padding_scales_with_sigma() {
        let pts = human(4);
        let up3 = upsample_gaussian(&pts, 324, 3.0, &mut rng()).unwrap();
        let up7 = upsample_gaussian(&pts, 324, 7.0, &mut rng()).unwrap();
        // Spread relative to the cluster anchor, where the noise centres.
        let anchor = Point3::new(15.0, 0.0, -2.6 + 0.015);
        let spread = |v: &[Point3]| {
            v[4..].iter().map(|p| p.distance(anchor)).sum::<f64>() / (v.len() - 4) as f64
        };
        assert!(spread(&up7) > spread(&up3) * 1.5);
    }

    #[test]
    fn empty_cloud_becomes_pure_noise() {
        let up = upsample_with_pool(&[], 324, &pool(), &mut rng()).unwrap();
        assert_eq!(up.len(), 324);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = human(50);
        let a = upsample_with_pool(&pts, 324, &pool(), &mut StdRng::seed_from_u64(5)).unwrap();
        let b = upsample_with_pool(&pts, 324, &pool(), &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
    }
}
