//! Train/test splitting and limited-data subsampling.

use rand::seq::SliceRandom;
use rand::Rng;

/// A train/test partition of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Split<T> {
    /// Training portion.
    pub train: Vec<T>,
    /// Held-out test portion.
    pub test: Vec<T>,
}

/// Randomly splits `samples` into train/test with the given training
/// ratio; the paper uses "a random 80:20 training and test split across
/// LiDAR samples" (§VII-A).
///
/// # Panics
///
/// Panics unless `0 < train_ratio < 1`.
pub fn split<T, R: Rng + ?Sized>(rng: &mut R, mut samples: Vec<T>, train_ratio: f64) -> Split<T> {
    assert!(
        train_ratio > 0.0 && train_ratio < 1.0,
        "train_ratio must be in (0, 1), got {train_ratio}"
    );
    samples.shuffle(rng);
    let n_train = ((samples.len() as f64) * train_ratio).round() as usize;
    let n_train = n_train.min(samples.len());
    let test = samples.split_off(n_train);
    Split {
        train: samples,
        test,
    }
}

/// Keeps a random fraction of `samples` (at least one when the input is
/// non-empty) — the limited-training-data protocol of Fig. 8b, which goes
/// down to 0.1 % of the training set.
///
/// # Panics
///
/// Panics unless `0 < frac <= 1`.
pub fn fraction<T, R: Rng + ?Sized>(rng: &mut R, mut samples: Vec<T>, frac: f64) -> Vec<T> {
    assert!(
        frac > 0.0 && frac <= 1.0,
        "frac must be in (0, 1], got {frac}"
    );
    samples.shuffle(rng);
    let keep = ((samples.len() as f64 * frac).round() as usize)
        .max(usize::from(!samples.is_empty()))
        .min(samples.len());
    samples.truncate(keep);
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn split_80_20_sizes() {
        let s = split(&mut rng(), (0..1000).collect::<Vec<_>>(), 0.8);
        assert_eq!(s.train.len(), 800);
        assert_eq!(s.test.len(), 200);
    }

    #[test]
    fn split_preserves_every_sample_exactly_once() {
        let s = split(&mut rng(), (0..101).collect::<Vec<_>>(), 0.8);
        let mut all: Vec<i32> = s.train.iter().chain(s.test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_random_but_seeded() {
        let a = split(&mut rng(), (0..50).collect::<Vec<_>>(), 0.5);
        let b = split(&mut rng(), (0..50).collect::<Vec<_>>(), 0.5);
        assert_eq!(a, b);
        let c = split(
            &mut StdRng::seed_from_u64(6),
            (0..50).collect::<Vec<_>>(),
            0.5,
        );
        assert_ne!(a.train, c.train);
    }

    #[test]
    #[should_panic(expected = "train_ratio")]
    fn split_rejects_bad_ratio() {
        let _ = split(&mut rng(), vec![1, 2, 3], 1.0);
    }

    #[test]
    fn fraction_keeps_requested_share() {
        let kept = fraction(&mut rng(), (0..1000).collect::<Vec<_>>(), 0.1);
        assert_eq!(kept.len(), 100);
    }

    #[test]
    fn tiny_fraction_keeps_at_least_one() {
        // 0.1% of 500 rounds to 1 rather than 0 (Fig. 8b goes to 0.1%).
        let kept = fraction(&mut rng(), (0..500).collect::<Vec<_>>(), 0.001);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn full_fraction_keeps_everything() {
        let kept = fraction(&mut rng(), (0..37).collect::<Vec<_>>(), 1.0);
        assert_eq!(kept.len(), 37);
    }

    #[test]
    fn fraction_of_empty_is_empty() {
        let kept: Vec<i32> = fraction(&mut rng(), Vec::new(), 0.5);
        assert!(kept.is_empty());
    }

    #[test]
    #[should_panic(expected = "frac")]
    fn fraction_rejects_zero() {
        let _ = fraction(&mut rng(), vec![1], 0.0);
    }
}
