//! Binary classification metrics (§VII-A's accuracy metrics).

use serde::{Deserialize, Serialize};

/// Accuracy, precision, recall and F1 for a binary classifier, with
/// "Human" (`class 1`) as the positive class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// TP / (TP + FP); 0 when no positives were predicted.
    pub precision: f64,
    /// TP / (TP + FN); 0 when no positives exist.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl BinaryMetrics {
    /// Computes metrics from parallel prediction/target class vectors
    /// (0 = Object, 1 = Human).
    ///
    /// # Panics
    ///
    /// Panics if the vectors disagree in length or are empty.
    pub fn from_predictions(predictions: &[usize], targets: &[usize]) -> Self {
        assert_eq!(
            predictions.len(),
            targets.len(),
            "prediction/target length mismatch"
        );
        assert!(!predictions.is_empty(), "cannot score zero predictions");
        let mut tp = 0usize;
        let mut tn = 0usize;
        let mut fp = 0usize;
        let mut fal_n = 0usize;
        for (&p, &t) in predictions.iter().zip(targets) {
            match (p, t) {
                (1, 1) => tp += 1,
                (0, 0) => tn += 1,
                (1, 0) => fp += 1,
                (0, 1) => fal_n += 1,
                _ => panic!("labels must be 0 or 1, got prediction {p} target {t}"),
            }
        }
        let accuracy = (tp + tn) as f64 / predictions.len() as f64;
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fal_n == 0 {
            0.0
        } else {
            tp as f64 / (tp + fal_n) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        BinaryMetrics {
            accuracy,
            precision,
            recall,
            f1,
        }
    }
}

impl std::fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc {:.2}% | F1 {:.3} | P {:.3} | R {:.3}",
            self.accuracy * 100.0,
            self.f1,
            self.precision,
            self.recall
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = BinaryMetrics::from_predictions(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn all_positive_predictor_matches_ocsvm_failure() {
        // The paper's OC-SVM labels everything "human": accuracy equals
        // the positive prevalence, recall 1, precision = prevalence.
        let targets = [1, 1, 0, 0, 1, 0, 0, 0, 1, 0];
        let preds = [1; 10];
        let m = BinaryMetrics::from_predictions(&preds, &targets);
        assert!((m.accuracy - 0.4).abs() < 1e-12);
        assert_eq!(m.recall, 1.0);
        assert!((m.precision - 0.4).abs() < 1e-12);
    }

    #[test]
    fn degenerate_negative_predictor() {
        let m = BinaryMetrics::from_predictions(&[0, 0, 0], &[1, 1, 0]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn known_mixed_case() {
        // TP=2 FP=1 FN=1 TN=1
        let m = BinaryMetrics::from_predictions(&[1, 1, 1, 0, 0], &[1, 1, 0, 1, 0]);
        assert!((m.accuracy - 0.6).abs() < 1e-12);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = BinaryMetrics::from_predictions(&[1], &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "labels must be 0 or 1")]
    fn non_binary_labels_panic() {
        let _ = BinaryMetrics::from_predictions(&[2], &[1]);
    }

    #[test]
    fn display_is_informative() {
        let m = BinaryMetrics::from_predictions(&[1, 0], &[1, 0]);
        let s = m.to_string();
        assert!(s.contains("acc") && s.contains("F1"));
    }
}
