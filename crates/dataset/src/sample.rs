//! Sample types and capture metadata.

use lidar::PointCloud;
use serde::{Deserialize, Serialize};

/// Binary class label for the human classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassLabel {
    /// A pedestrian cluster (positive class).
    Human,
    /// A clutter cluster (negative class).
    Object,
}

impl ClassLabel {
    /// Encodes the label as the class index used by the classifiers
    /// (`Human = 1`, `Object = 0`).
    pub fn index(self) -> usize {
        match self {
            ClassLabel::Object => 0,
            ClassLabel::Human => 1,
        }
    }

    /// Decodes a class index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    pub fn from_index(index: usize) -> Self {
        match index {
            0 => ClassLabel::Object,
            1 => ClassLabel::Human,
            _ => panic!("invalid class index {index}"),
        }
    }
}

impl std::fmt::Display for ClassLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ClassLabel::Human => "Human",
            ClassLabel::Object => "Object",
        })
    }
}

/// Capture metadata, mirroring requirement (4) of §VII-A: timestamps and
/// sensor positions "to support the analysis of dynamic crowd behaviors
/// over time".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleMeta {
    /// Seconds since the start of the (simulated) collection campaign.
    pub timestamp_s: f64,
    /// Height of the sensor above ground in metres.
    pub sensor_height_m: f64,
    /// RNG seed that reproduces this capture exactly.
    pub capture_seed: u64,
}

impl SampleMeta {
    /// Creates metadata for capture number `index` of a campaign seeded
    /// with `campaign_seed`, assuming one capture every `period_s`
    /// seconds.
    pub fn for_capture(campaign_seed: u64, index: u64, period_s: f64) -> Self {
        SampleMeta {
            timestamp_s: index as f64 * period_s,
            sensor_height_m: world::POLE_HEIGHT,
            capture_seed: campaign_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index),
        }
    }
}

/// One labelled cluster for single-person detection (paper dataset 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionSample {
    /// The cluster's points.
    pub cloud: PointCloud,
    /// Ground-truth label.
    pub label: ClassLabel,
    /// Capture metadata.
    pub meta: SampleMeta,
}

/// One full capture for crowd counting (paper dataset 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountingSample {
    /// The filtered sweep (after ROI crop and ground segmentation).
    pub cloud: PointCloud,
    /// Ground-truth number of visible pedestrians.
    pub ground_truth: usize,
    /// Capture metadata.
    pub meta: SampleMeta,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_index_round_trip() {
        for l in [ClassLabel::Human, ClassLabel::Object] {
            assert_eq!(ClassLabel::from_index(l.index()), l);
        }
        assert_eq!(ClassLabel::Human.index(), 1);
        assert_eq!(ClassLabel::Object.index(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid class index")]
    fn bad_index_panics() {
        let _ = ClassLabel::from_index(2);
    }

    #[test]
    fn display_labels() {
        assert_eq!(ClassLabel::Human.to_string(), "Human");
        assert_eq!(ClassLabel::Object.to_string(), "Object");
    }

    #[test]
    fn meta_timestamps_advance() {
        let a = SampleMeta::for_capture(1, 0, 0.1);
        let b = SampleMeta::for_capture(1, 10, 0.1);
        assert_eq!(a.timestamp_s, 0.0);
        assert!((b.timestamp_s - 1.0).abs() < 1e-12);
        assert_eq!(a.sensor_height_m, 3.0);
        assert_ne!(a.capture_seed, b.capture_seed);
    }

    #[test]
    fn meta_seeds_differ_by_campaign() {
        let a = SampleMeta::for_capture(1, 5, 0.1);
        let b = SampleMeta::for_capture(2, 5, 0.1);
        assert_ne!(a.capture_seed, b.capture_seed);
    }
}
