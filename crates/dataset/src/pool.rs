//! The pooled "Object" dataset used by noise-controlled up-sampling.
//!
//! §V: "In practice, all 'Object' data are pooled together, and the
//! required number of point clouds are randomly selected from this pool to
//! up-sample each 'Human' point cloud."

use geom::Point3;
use lidar::PointCloud;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A flat pool of points drawn from human-free captures.
///
/// # Examples
///
/// ```
/// use dataset::ObjectPool;
/// use geom::Point3;
/// use rand::SeedableRng;
///
/// let pool = ObjectPool::new(vec![Point3::new(15.0, 0.0, -2.0); 10]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(pool.sample_points(&mut rng, 4).len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectPool {
    points: Vec<Point3>,
    /// x/y centroid of the pooled points, computed once at
    /// construction. Up-sampling re-anchors every padding draw relative
    /// to this; recomputing it per cluster per frame made each upsample
    /// call O(pool size).
    centroid_xy: (f64, f64),
}

fn centroid_xy_of(points: &[Point3]) -> (f64, f64) {
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let n = points.len() as f64;
    (
        points.iter().map(|p| p.x).sum::<f64>() / n,
        points.iter().map(|p| p.y).sum::<f64>() / n,
    )
}

impl ObjectPool {
    /// Creates a pool from raw points.
    pub fn new(points: Vec<Point3>) -> Self {
        let centroid_xy = centroid_xy_of(&points);
        ObjectPool {
            points,
            centroid_xy,
        }
    }

    /// Builds a pool by flattening object clouds.
    pub fn from_clouds<'a, I: IntoIterator<Item = &'a PointCloud>>(clouds: I) -> Self {
        Self::new(
            clouds
                .into_iter()
                .flat_map(|c| c.points().iter().copied())
                .collect(),
        )
    }

    /// The pool's x/y centroid, cached at construction (`(0, 0)` for an
    /// empty pool).
    pub fn centroid_xy(&self) -> (f64, f64) {
        self.centroid_xy
    }

    /// Number of pooled points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The pooled points.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Draws `n` points uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty and `n > 0` — up-sampling needs a
    /// non-empty object dataset.
    pub fn sample_points<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Point3> {
        if n == 0 {
            return Vec::new();
        }
        assert!(
            !self.points.is_empty(),
            "cannot sample from an empty object pool"
        );
        (0..n)
            .map(|_| self.points[rng.gen_range(0..self.points.len())])
            .collect()
    }
}

impl Extend<Point3> for ObjectPool {
    fn extend<I: IntoIterator<Item = Point3>>(&mut self, iter: I) {
        self.points.extend(iter);
        self.centroid_xy = centroid_xy_of(&self.points);
    }
}

impl FromIterator<Point3> for ObjectPool {
    fn from_iter<I: IntoIterator<Item = Point3>>(iter: I) -> Self {
        ObjectPool::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_clouds_flattens() {
        let c1 = PointCloud::new(vec![Point3::ZERO, Point3::splat(1.0)]);
        let c2 = PointCloud::new(vec![Point3::splat(2.0)]);
        let pool = ObjectPool::from_clouds([&c1, &c2]);
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn samples_come_from_the_pool() {
        let pts = vec![Point3::splat(1.0), Point3::splat(2.0), Point3::splat(3.0)];
        let pool = ObjectPool::new(pts.clone());
        let mut rng = StdRng::seed_from_u64(4);
        for p in pool.sample_points(&mut rng, 50) {
            assert!(pts.contains(&p));
        }
    }

    #[test]
    fn sampling_zero_from_empty_is_fine() {
        let pool = ObjectPool::default();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(pool.sample_points(&mut rng, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty object pool")]
    fn sampling_from_empty_pool_panics() {
        let pool = ObjectPool::default();
        let mut rng = StdRng::seed_from_u64(4);
        let _ = pool.sample_points(&mut rng, 1);
    }

    #[test]
    fn extend_and_collect() {
        let mut pool: ObjectPool = (0..5).map(|i| Point3::splat(i as f64)).collect();
        pool.extend([Point3::splat(9.0)]);
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn centroid_is_cached_at_construction_and_tracks_extend() {
        let pool = ObjectPool::new(vec![
            Point3::new(1.0, 2.0, 5.0),
            Point3::new(3.0, 6.0, -1.0),
        ]);
        assert_eq!(pool.centroid_xy(), (2.0, 4.0));

        // Every constructor path must agree with a fresh recompute.
        let collected: ObjectPool = pool.points().iter().copied().collect();
        assert_eq!(collected.centroid_xy(), (2.0, 4.0));
        let cloud = PointCloud::new(pool.points().to_vec());
        assert_eq!(ObjectPool::from_clouds([&cloud]).centroid_xy(), (2.0, 4.0));

        // Extending the pool refreshes the cache.
        let mut pool = pool;
        pool.extend([Point3::new(5.0, 13.0, 0.0)]);
        assert_eq!(pool.centroid_xy(), (3.0, 7.0));

        // Empty pools report the origin rather than NaN.
        assert_eq!(ObjectPool::default().centroid_xy(), (0.0, 0.0));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let pool: ObjectPool = (0..100).map(|i| Point3::splat(i as f64)).collect();
        let a = pool.sample_points(&mut StdRng::seed_from_u64(11), 20);
        let b = pool.sample_points(&mut StdRng::seed_from_u64(11), 20);
        assert_eq!(a, b);
    }
}
