//! The common interface every human classifier implements.

use geom::Point3;

use crate::{BinaryMetrics, ClassLabel, DetectionSample};

/// A model that labels clustered point clouds as "Human" or "Object".
///
/// Implemented by HAWC and by every baseline (PointNet, AutoEncoder,
/// OC-SVM), so the counting pipeline and the evaluation harness can treat
/// them uniformly.
pub trait CloudClassifier {
    /// Classifies a batch of clusters.
    fn classify(&mut self, clouds: &[Vec<Point3>]) -> Vec<ClassLabel>;

    /// Classifies a batch of clusters, allowed to fan the per-cluster
    /// work out over up to `threads` worker threads (`0` = pick
    /// automatically).
    ///
    /// Implementations must return **exactly** what [`classify`]
    /// returns for the same batch — thread count is a throughput knob,
    /// never an accuracy knob — so the default simply delegates to the
    /// serial path. Classifiers with an internally parallel hot path
    /// (HAWC's upsample + projection fan-out) override this.
    ///
    /// [`classify`]: CloudClassifier::classify
    fn classify_parallel(&mut self, clouds: &[Vec<Point3>], threads: usize) -> Vec<ClassLabel> {
        let _ = threads;
        self.classify(clouds)
    }

    /// Short human-readable model name for report tables.
    fn model_name(&self) -> &str;

    /// Evaluates accuracy metrics on labelled clusters.
    ///
    /// # Panics
    ///
    /// Panics on an empty test set.
    fn evaluate_samples(&mut self, samples: &[DetectionSample]) -> BinaryMetrics {
        assert!(!samples.is_empty(), "test set is empty");
        let clouds: Vec<Vec<Point3>> = samples.iter().map(|s| s.cloud.points().to_vec()).collect();
        let preds: Vec<usize> = self
            .classify(&clouds)
            .into_iter()
            .map(|l| l.index())
            .collect();
        let targets: Vec<usize> = samples.iter().map(|s| s.label.index()).collect();
        BinaryMetrics::from_predictions(&preds, &targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SampleMeta;
    use lidar::PointCloud;

    /// A classifier that calls everything taller than 1.2 m a human.
    struct HeightRule;

    impl CloudClassifier for HeightRule {
        fn classify(&mut self, clouds: &[Vec<Point3>]) -> Vec<ClassLabel> {
            clouds
                .iter()
                .map(|c| {
                    let hi = c.iter().map(|p| p.z).fold(f64::NEG_INFINITY, f64::max);
                    let lo = c.iter().map(|p| p.z).fold(f64::INFINITY, f64::min);
                    if hi - lo > 1.2 {
                        ClassLabel::Human
                    } else {
                        ClassLabel::Object
                    }
                })
                .collect()
        }

        fn model_name(&self) -> &str {
            "height-rule"
        }
    }

    fn sample(height: f64, label: ClassLabel) -> DetectionSample {
        let cloud: Vec<Point3> = (0..20)
            .map(|i| Point3::new(15.0, 0.0, -3.0 + height * i as f64 / 19.0))
            .collect();
        DetectionSample {
            cloud: PointCloud::new(cloud),
            label,
            meta: SampleMeta::for_capture(0, 0, 1.0),
        }
    }

    #[test]
    fn trait_evaluation_path_works() {
        let mut rule = HeightRule;
        let samples = vec![
            sample(1.7, ClassLabel::Human),
            sample(1.6, ClassLabel::Human),
            sample(0.9, ClassLabel::Object),
            sample(1.0, ClassLabel::Object),
        ];
        let m = rule.evaluate_samples(&samples);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(rule.model_name(), "height-rule");
    }

    #[test]
    #[should_panic(expected = "test set is empty")]
    fn empty_test_set_panics() {
        let mut rule = HeightRule;
        let _ = rule.evaluate_samples(&[]);
    }
}
