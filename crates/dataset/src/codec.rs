//! A compact binary on-disk format for generated datasets.
//!
//! Generating the paper-scale datasets (15,028 captures) takes a little
//! while, so harness binaries cache them. The format is deliberately
//! simple: a magic header, a record kind, a little-endian payload. No
//! external format crate is used — records are framed by hand on top of
//! [`bytes`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use geom::Point3;
use lidar::PointCloud;
use std::fs;
use std::io;
use std::path::Path;

use crate::{ClassLabel, CountingSample, DetectionSample, ObjectPool, SampleMeta};

/// File magic: "HAWC" + format version 1.
const MAGIC: &[u8; 8] = b"HAWCDS01";

const KIND_DETECTION: u8 = 1;
const KIND_COUNTING: u8 = 2;
const KIND_POOL: u8 = 3;

/// Errors from encoding or decoding dataset files.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The payload is not a valid dataset file of the expected kind.
    Format(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "dataset i/o error: {e}"),
            CodecError::Format(msg) => write!(f, "malformed dataset file: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError::Format(msg.into()))
}

fn put_header(buf: &mut BytesMut, kind: u8, count: u64) {
    buf.put_slice(MAGIC);
    buf.put_u8(kind);
    buf.put_u64_le(count);
}

fn check_header(buf: &mut Bytes, kind: u8) -> Result<u64, CodecError> {
    if buf.remaining() < MAGIC.len() + 1 + 8 {
        return format_err("truncated header");
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return format_err("bad magic");
    }
    let got = buf.get_u8();
    if got != kind {
        return format_err(format!("wrong record kind: expected {kind}, found {got}"));
    }
    Ok(buf.get_u64_le())
}

fn put_cloud(buf: &mut BytesMut, cloud: &PointCloud) {
    buf.put_u32_le(cloud.len() as u32);
    for p in cloud.points() {
        buf.put_f64_le(p.x);
        buf.put_f64_le(p.y);
        buf.put_f64_le(p.z);
    }
}

fn get_cloud(buf: &mut Bytes) -> Result<PointCloud, CodecError> {
    if buf.remaining() < 4 {
        return format_err("truncated cloud length");
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n * 24 {
        return format_err("truncated cloud body");
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        let z = buf.get_f64_le();
        points.push(Point3::new(x, y, z));
    }
    Ok(PointCloud::new(points))
}

fn put_meta(buf: &mut BytesMut, meta: &SampleMeta) {
    buf.put_f64_le(meta.timestamp_s);
    buf.put_f64_le(meta.sensor_height_m);
    buf.put_u64_le(meta.capture_seed);
}

fn get_meta(buf: &mut Bytes) -> Result<SampleMeta, CodecError> {
    if buf.remaining() < 24 {
        return format_err("truncated metadata");
    }
    Ok(SampleMeta {
        timestamp_s: buf.get_f64_le(),
        sensor_height_m: buf.get_f64_le(),
        capture_seed: buf.get_u64_le(),
    })
}

/// Encodes a detection dataset to bytes.
pub fn encode_detection(samples: &[DetectionSample]) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, KIND_DETECTION, samples.len() as u64);
    for s in samples {
        buf.put_u8(s.label.index() as u8);
        put_meta(&mut buf, &s.meta);
        put_cloud(&mut buf, &s.cloud);
    }
    buf.freeze()
}

/// Decodes a detection dataset.
///
/// # Errors
///
/// Returns [`CodecError::Format`] on any framing violation.
pub fn decode_detection(mut buf: Bytes) -> Result<Vec<DetectionSample>, CodecError> {
    let n = check_header(&mut buf, KIND_DETECTION)?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        if buf.remaining() < 1 {
            return format_err("truncated label");
        }
        let raw = buf.get_u8();
        if raw > 1 {
            return format_err(format!("invalid label byte {raw}"));
        }
        let label = ClassLabel::from_index(raw as usize);
        let meta = get_meta(&mut buf)?;
        let cloud = get_cloud(&mut buf)?;
        out.push(DetectionSample { cloud, label, meta });
    }
    if buf.has_remaining() {
        return format_err("trailing bytes after last record");
    }
    Ok(out)
}

/// Encodes a counting dataset to bytes.
pub fn encode_counting(samples: &[CountingSample]) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, KIND_COUNTING, samples.len() as u64);
    for s in samples {
        buf.put_u32_le(s.ground_truth as u32);
        put_meta(&mut buf, &s.meta);
        put_cloud(&mut buf, &s.cloud);
    }
    buf.freeze()
}

/// Decodes a counting dataset.
///
/// # Errors
///
/// Returns [`CodecError::Format`] on any framing violation.
pub fn decode_counting(mut buf: Bytes) -> Result<Vec<CountingSample>, CodecError> {
    let n = check_header(&mut buf, KIND_COUNTING)?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        if buf.remaining() < 4 {
            return format_err("truncated ground truth");
        }
        let ground_truth = buf.get_u32_le() as usize;
        let meta = get_meta(&mut buf)?;
        let cloud = get_cloud(&mut buf)?;
        out.push(CountingSample {
            cloud,
            ground_truth,
            meta,
        });
    }
    if buf.has_remaining() {
        return format_err("trailing bytes after last record");
    }
    Ok(out)
}

/// Encodes an object pool to bytes.
pub fn encode_pool(pool: &ObjectPool) -> Bytes {
    let mut buf = BytesMut::new();
    put_header(&mut buf, KIND_POOL, pool.len() as u64);
    for p in pool.points() {
        buf.put_f64_le(p.x);
        buf.put_f64_le(p.y);
        buf.put_f64_le(p.z);
    }
    buf.freeze()
}

/// Decodes an object pool.
///
/// # Errors
///
/// Returns [`CodecError::Format`] on any framing violation.
pub fn decode_pool(mut buf: Bytes) -> Result<ObjectPool, CodecError> {
    let n = check_header(&mut buf, KIND_POOL)?;
    if buf.remaining() < n as usize * 24 {
        return format_err("truncated pool body");
    }
    let mut points = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        let z = buf.get_f64_le();
        points.push(Point3::new(x, y, z));
    }
    if buf.has_remaining() {
        return format_err("trailing bytes after pool body");
    }
    Ok(ObjectPool::new(points))
}

/// Writes a detection dataset to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_detection<P: AsRef<Path>>(
    path: P,
    samples: &[DetectionSample],
) -> Result<(), CodecError> {
    fs::write(path, encode_detection(samples))?;
    Ok(())
}

/// Reads a detection dataset from `path`.
///
/// # Errors
///
/// Propagates filesystem errors and framing violations.
pub fn load_detection<P: AsRef<Path>>(path: P) -> Result<Vec<DetectionSample>, CodecError> {
    decode_detection(Bytes::from(fs::read(path)?))
}

/// Writes a counting dataset to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_counting<P: AsRef<Path>>(
    path: P,
    samples: &[CountingSample],
) -> Result<(), CodecError> {
    fs::write(path, encode_counting(samples))?;
    Ok(())
}

/// Reads a counting dataset from `path`.
///
/// # Errors
///
/// Propagates filesystem errors and framing violations.
pub fn load_counting<P: AsRef<Path>>(path: P) -> Result<Vec<CountingSample>, CodecError> {
    decode_counting(Bytes::from(fs::read(path)?))
}

/// Writes an object pool to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_pool<P: AsRef<Path>>(path: P, pool: &ObjectPool) -> Result<(), CodecError> {
    fs::write(path, encode_pool(pool))?;
    Ok(())
}

/// Reads an object pool from `path`.
///
/// # Errors
///
/// Propagates filesystem errors and framing violations.
pub fn load_pool<P: AsRef<Path>>(path: P) -> Result<ObjectPool, CodecError> {
    decode_pool(Bytes::from(fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta(i: u64) -> SampleMeta {
        SampleMeta::for_capture(7, i, 2.0)
    }

    fn detection_fixture() -> Vec<DetectionSample> {
        (0..5)
            .map(|i| DetectionSample {
                cloud: PointCloud::new(
                    (0..i + 1)
                        .map(|j| Point3::new(j as f64, i as f64, -1.0))
                        .collect(),
                ),
                label: if i % 2 == 0 {
                    ClassLabel::Human
                } else {
                    ClassLabel::Object
                },
                meta: sample_meta(i as u64),
            })
            .collect()
    }

    #[test]
    fn detection_round_trip() {
        let data = detection_fixture();
        let decoded = decode_detection(encode_detection(&data)).unwrap();
        assert_eq!(data, decoded);
    }

    #[test]
    fn counting_round_trip() {
        let data: Vec<CountingSample> = (0..4)
            .map(|i| CountingSample {
                cloud: PointCloud::new(vec![Point3::splat(i as f64); i + 2]),
                ground_truth: i,
                meta: sample_meta(i as u64),
            })
            .collect();
        let decoded = decode_counting(encode_counting(&data)).unwrap();
        assert_eq!(data, decoded);
    }

    #[test]
    fn pool_round_trip() {
        let pool = ObjectPool::new((0..17).map(|i| Point3::splat(i as f64 * 0.3)).collect());
        let decoded = decode_pool(encode_pool(&pool)).unwrap();
        assert_eq!(pool, decoded);
    }

    #[test]
    fn empty_datasets_round_trip() {
        assert!(decode_detection(encode_detection(&[])).unwrap().is_empty());
        assert!(decode_counting(encode_counting(&[])).unwrap().is_empty());
        assert!(decode_pool(encode_pool(&ObjectPool::default()))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let enc = encode_detection(&detection_fixture());
        let err = decode_counting(enc).unwrap_err();
        assert!(matches!(err, CodecError::Format(_)), "{err}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut raw = encode_detection(&detection_fixture()).to_vec();
        raw[0] = b'X';
        assert!(decode_detection(Bytes::from(raw)).is_err());
    }

    #[test]
    fn truncation_is_rejected() {
        let raw = encode_detection(&detection_fixture()).to_vec();
        for cut in [0, 5, raw.len() / 2, raw.len() - 1] {
            let res = decode_detection(Bytes::from(raw[..cut].to_vec()));
            assert!(res.is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut raw = encode_detection(&detection_fixture()).to_vec();
        raw.push(0);
        assert!(decode_detection(Bytes::from(raw)).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hawc_codec_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("det.hawc");
        let data = detection_fixture();
        save_detection(&path, &data).unwrap();
        let loaded = load_detection(&path).unwrap();
        assert_eq!(data, loaded);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_detection("/nonexistent/path/x.hawc").unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }
}
