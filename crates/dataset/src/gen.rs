//! Deterministic, parallel dataset generation.

use cluster::{adaptive_dbscan, AdaptiveConfig};
use lidar::{ground_segment, roi_filter, LabeledSweep, Lidar, PointCloud, SensorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use world::{CampusObject, Human, ObjectKind, Scene, WalkwayConfig};

use crate::{ClassLabel, CountingSample, DetectionSample, ObjectPool, SampleMeta};

/// Configuration for the single-person detection dataset (paper dataset 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionDatasetConfig {
    /// Total number of samples; half are "Human", half "Object".
    pub samples: usize,
    /// Campaign seed; the same seed reproduces the same dataset.
    pub seed: u64,
    /// Walkway geometry.
    pub walkway: WalkwayConfig,
    /// Sensor model.
    pub sensor: SensorConfig,
    /// Minimum points a cluster must have to count as a usable capture;
    /// sparser captures are re-taken (the paper's curation step).
    pub min_cluster_points: usize,
    /// Seconds between captures (only affects metadata timestamps).
    pub capture_period_s: f64,
    /// Worker threads (0 = use all available cores).
    pub threads: usize,
}

impl Default for DetectionDatasetConfig {
    fn default() -> Self {
        DetectionDatasetConfig {
            samples: 1000,
            seed: 0xC0FFEE,
            walkway: WalkwayConfig::default(),
            sensor: SensorConfig::default(),
            min_cluster_points: 10,
            capture_period_s: 2.1, // 15,028 samples over ~1 year of bursts
            threads: 0,
        }
    }
}

/// Configuration for the multi-person counting dataset (paper dataset 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountingDatasetConfig {
    /// Number of captures.
    pub samples: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Walkway geometry.
    pub walkway: WalkwayConfig,
    /// Sensor model.
    pub sensor: SensorConfig,
    /// Maximum pedestrians per capture (inclusive); the count is uniform
    /// in `0..=max_pedestrians`.
    pub max_pedestrians: usize,
    /// Maximum clutter objects per capture (inclusive).
    pub max_objects: usize,
    /// A pedestrian counts toward ground truth only if at least this many
    /// returns survive filtering (matches manual labelling, which can only
    /// count people visible in the capture).
    pub min_visible_points: usize,
    /// Seconds between captures (metadata only).
    pub capture_period_s: f64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl Default for CountingDatasetConfig {
    fn default() -> Self {
        CountingDatasetConfig {
            samples: 500,
            seed: 0xBEEF,
            walkway: WalkwayConfig::default(),
            sensor: SensorConfig::default(),
            max_pedestrians: 6,
            max_objects: 3,
            min_visible_points: 8,
            capture_period_s: 2.1,
            threads: 0,
        }
    }
}

fn worker_count(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Runs `make(index)` for `0..n` across worker threads, preserving order.
/// Each index derives its own RNG, so the output is independent of the
/// thread count.
fn parallel_generate<T: Send, F: Fn(u64) -> T + Sync>(n: usize, threads: usize, make: F) -> Vec<T> {
    let threads = worker_count(threads).min(n.max(1));
    if threads <= 1 || n < 32 {
        return (0..n as u64).map(make).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let make = &make;
            s.spawn(move |_| {
                let base = (t * chunk) as u64;
                for (i, cell) in slot.iter_mut().enumerate() {
                    *cell = Some(make(base + i as u64));
                }
            });
        }
    })
    .expect("dataset worker panicked");
    out.into_iter()
        .map(|x| x.expect("worker filled every slot"))
        .collect()
}

/// Extracts the cluster a deployed pipeline would hand the classifier:
/// runs adaptive clustering over the filtered sweep and returns the
/// cluster holding most of `entity`'s returns — *including* whatever
/// contamination (neighbouring clutter, residual ground spill) the
/// clustering merged in. Ground-truth-attributed clusters would be
/// unrealistically clean; the paper's lasso-labelled patterns carry the
/// same kind of noise.
fn extract_entity_cluster(
    sweep: &LabeledSweep,
    entity: usize,
    min_points: usize,
) -> Option<PointCloud> {
    let clustering = adaptive_dbscan(sweep.points(), &AdaptiveConfig::default());
    let clusters = clustering.clusters();
    let owned = |idxs: &[usize]| {
        idxs.iter()
            .filter(|&&i| sweep.entities()[i] == Some(entity))
            .count()
    };
    let best = clusters.iter().max_by_key(|idxs| owned(idxs))?;
    let attributed = owned(best);
    // The capture is usable when the entity dominates its cluster and
    // the cluster is big enough — otherwise curation re-takes it.
    if attributed * 2 < best.len() || best.len() < min_points {
        return None;
    }
    Some(best.iter().map(|&i| sweep.points()[i]).collect())
}

/// Captures the cluster of one pedestrian; retries with closer placements
/// until it has at least `min_points` returns.
fn capture_human_cluster(
    rng: &mut StdRng,
    walkway: &WalkwayConfig,
    sensor: &Lidar,
    min_points: usize,
) -> PointCloud {
    for attempt in 0..32 {
        // Pull placements toward the sensor on retries: far captures are
        // legitimately sparse and get re-taken, exactly like curation
        // drops unusable real captures.
        let shrink = 1.0 - 0.025 * attempt as f64;
        let x_max = walkway.x_min + (walkway.x_max - walkway.x_min) * shrink;
        let x = rng.gen_range(walkway.x_min..x_max.max(walkway.x_min + 1.0));
        let y = rng.gen_range(-walkway.half_width()..walkway.half_width());
        let heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut scene = Scene::new(*walkway);
        let id = scene.add_human(Human::new(world::HumanParams::sample(rng), x, y, heading));
        // Background clutter that does not touch the pedestrian.
        for _ in 0..rng.gen_range(0..3usize) {
            let ox = rng.gen_range(walkway.x_min..walkway.x_max);
            let oy = rng.gen_range(-walkway.half_width()..walkway.half_width());
            if (ox - x).abs() > 2.0 || (oy - y).abs() > 1.5 {
                let kind = ObjectKind::sample(rng);
                scene.add_object(CampusObject::build(rng, kind, ox, oy));
            }
        }
        let mut sweep = sensor.scan(&scene, rng);
        roi_filter(&mut sweep, walkway);
        ground_segment(&mut sweep);
        if let Some(cluster) = extract_entity_cluster(&sweep, id, min_points) {
            return cluster;
        }
    }
    panic!("could not capture a usable human cluster after 32 attempts");
}

/// Captures the cluster of one clutter object, retrying kinds/placements
/// until it has at least `min_points` returns.
fn capture_object_cluster(
    rng: &mut StdRng,
    walkway: &WalkwayConfig,
    sensor: &Lidar,
    min_points: usize,
) -> PointCloud {
    for attempt in 0..48 {
        let shrink = 1.0 - 0.018 * attempt as f64;
        let x_max = walkway.x_min + (walkway.x_max - walkway.x_min) * shrink;
        let x = rng.gen_range(walkway.x_min..x_max.max(walkway.x_min + 1.0));
        let y = rng.gen_range(-walkway.half_width()..walkway.half_width());
        let kind = ObjectKind::sample(rng);
        let mut scene = Scene::new(*walkway);
        let id = scene.add_object(CampusObject::build(rng, kind, x, y));
        let mut sweep = sensor.scan(&scene, rng);
        roi_filter(&mut sweep, walkway);
        ground_segment(&mut sweep);
        if let Some(cluster) = extract_entity_cluster(&sweep, id, min_points) {
            return cluster;
        }
    }
    panic!("could not capture a usable object cluster after 48 attempts");
}

/// Generates the single-person detection dataset: even indices are
/// "Human" captures, odd indices "Object" captures, so any prefix is
/// class-balanced.
pub fn generate_detection_dataset(cfg: &DetectionDatasetConfig) -> Vec<DetectionSample> {
    let sensor = Lidar::new(cfg.sensor);
    parallel_generate(cfg.samples, cfg.threads, |i| {
        let meta = SampleMeta::for_capture(cfg.seed, i, cfg.capture_period_s);
        let mut rng = StdRng::seed_from_u64(meta.capture_seed);
        let (cloud, label) = if i % 2 == 0 {
            (
                capture_human_cluster(&mut rng, &cfg.walkway, &sensor, cfg.min_cluster_points),
                ClassLabel::Human,
            )
        } else {
            (
                capture_object_cluster(&mut rng, &cfg.walkway, &sensor, cfg.min_cluster_points),
                ClassLabel::Object,
            )
        };
        DetectionSample { cloud, label, meta }
    })
}

/// Generates the multi-person counting dataset. Ground truth is the
/// number of pedestrians with at least `min_visible_points` surviving
/// returns — people fully occluded or out of range cannot be counted by
/// any sensor-side method, nor by the human labellers of §VII-A.
pub fn generate_counting_dataset(cfg: &CountingDatasetConfig) -> Vec<CountingSample> {
    let sensor = Lidar::new(cfg.sensor);
    parallel_generate(cfg.samples, cfg.threads, |i| {
        let meta = SampleMeta::for_capture(cfg.seed, i, cfg.capture_period_s);
        let mut rng = StdRng::seed_from_u64(meta.capture_seed);
        let n_people = rng.gen_range(0..=cfg.max_pedestrians);
        let n_objects = rng.gen_range(0..=cfg.max_objects);
        let mut scene = Scene::new(cfg.walkway);
        let mut human_ids = Vec::with_capacity(n_people);
        for _ in 0..n_people {
            human_ids.push(scene.add_human(Human::sample(&mut rng, &cfg.walkway)));
        }
        for _ in 0..n_objects {
            scene.add_object(CampusObject::sample(
                &mut rng,
                cfg.walkway.x_min,
                cfg.walkway.x_max,
                cfg.walkway.half_width(),
            ));
        }
        let mut sweep = sensor.scan(&scene, &mut rng);
        roi_filter(&mut sweep, &cfg.walkway);
        ground_segment(&mut sweep);
        let ground_truth = human_ids
            .iter()
            .filter(|&&id| sweep.points_of(id).len() >= cfg.min_visible_points)
            .count();
        CountingSample {
            cloud: sweep.into_cloud(),
            ground_truth,
            meta,
        }
    })
}

/// Generates the pooled "Object" dataset (§V) from `scenes` human-free
/// captures, each containing 1–4 clutter objects.
pub fn generate_object_pool(
    seed: u64,
    scenes: usize,
    walkway: &WalkwayConfig,
    sensor_cfg: &SensorConfig,
) -> ObjectPool {
    let sensor = Lidar::new(*sensor_cfg);
    let clouds = parallel_generate(scenes, 0, |i| {
        let mut rng = StdRng::seed_from_u64(seed ^ (0xA5A5_0000 + i));
        let mut scene = Scene::new(*walkway);
        for _ in 0..rng.gen_range(1..=4usize) {
            scene.add_object(CampusObject::sample(
                &mut rng,
                walkway.x_min,
                walkway.x_max,
                walkway.half_width(),
            ));
        }
        let mut sweep = sensor.scan(&scene, &mut rng);
        roi_filter(&mut sweep, walkway);
        ground_segment(&mut sweep);
        sweep.into_cloud()
    });
    ObjectPool::from_clouds(clouds.iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_detection_cfg() -> DetectionDatasetConfig {
        DetectionDatasetConfig {
            samples: 40,
            seed: 1,
            ..DetectionDatasetConfig::default()
        }
    }

    #[test]
    fn detection_dataset_is_balanced_and_curated() {
        let cfg = small_detection_cfg();
        let data = generate_detection_dataset(&cfg);
        assert_eq!(data.len(), 40);
        let humans = data.iter().filter(|s| s.label == ClassLabel::Human).count();
        assert_eq!(humans, 20);
        for s in &data {
            assert!(
                s.cloud.len() >= cfg.min_cluster_points,
                "curation floor violated: {}",
                s.cloud.len()
            );
        }
    }

    #[test]
    fn detection_dataset_is_deterministic() {
        let cfg = small_detection_cfg();
        let a = generate_detection_dataset(&cfg);
        let b = generate_detection_dataset(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn detection_dataset_independent_of_thread_count() {
        let base = small_detection_cfg();
        let serial = generate_detection_dataset(&DetectionDatasetConfig { threads: 1, ..base });
        let parallel = generate_detection_dataset(&DetectionDatasetConfig { threads: 4, ..base });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn human_clusters_look_human_sized() {
        let cfg = small_detection_cfg();
        let data = generate_detection_dataset(&cfg);
        // Clusters now come from the real clustering pipeline, so some
        // are partial (occluded legs/torso) or carry contamination; the
        // bulk must still be person-sized.
        let heights: Vec<f64> = data
            .iter()
            .filter(|s| s.label == ClassLabel::Human)
            .map(|s| s.cloud.bounds().unwrap().extent().z)
            .collect();
        let in_range = heights.iter().filter(|&&h| h > 0.5 && h < 2.2).count();
        assert!(
            in_range * 10 >= heights.len() * 8,
            "most human clusters should be person-sized: {in_range}/{}",
            heights.len()
        );
    }

    #[test]
    fn counting_dataset_ground_truth_bounds() {
        let cfg = CountingDatasetConfig {
            samples: 30,
            seed: 2,
            ..CountingDatasetConfig::default()
        };
        let data = generate_counting_dataset(&cfg);
        assert_eq!(data.len(), 30);
        for s in &data {
            assert!(s.ground_truth <= cfg.max_pedestrians);
        }
        // With up to 6 pedestrians per capture, some capture must see >1.
        assert!(data.iter().any(|s| s.ground_truth > 1));
        // And empty walkways happen too.
        assert!(data.iter().any(|s| s.ground_truth == 0));
    }

    #[test]
    fn counting_dataset_is_deterministic() {
        let cfg = CountingDatasetConfig {
            samples: 12,
            seed: 3,
            ..CountingDatasetConfig::default()
        };
        assert_eq!(
            generate_counting_dataset(&cfg),
            generate_counting_dataset(&cfg)
        );
    }

    #[test]
    fn object_pool_has_points_below_human_height() {
        let pool = generate_object_pool(9, 12, &WalkwayConfig::default(), &SensorConfig::default());
        assert!(pool.len() > 50, "pool too small: {}", pool.len());
        // After ground segmentation everything sits in [-2.6, 0.5].
        for p in pool.points() {
            assert!(p.z >= -2.6);
            assert!(p.z < 0.5);
        }
    }

    #[test]
    fn timestamps_are_monotonic() {
        let cfg = small_detection_cfg();
        let data = generate_detection_dataset(&cfg);
        for w in data.windows(2) {
            assert!(w[0].meta.timestamp_s < w[1].meta.timestamp_s);
        }
    }
}
