//! Dataset generation, curation and serialization for HAWC-CC.
//!
//! The paper collects two campus datasets of 15,028 LiDAR samples each
//! (§VII-A): a *single-person* dataset for human-detection evaluation and a
//! *multiple-person* dataset for crowd-counting evaluation, plus an
//! "Object" pool of human-free captures that feeds the noise-controlled
//! up-sampling of §V. This crate generates the synthetic equivalents
//! against the [`world`]/[`lidar`] simulator:
//!
//! * [`generate_detection_dataset`] — labelled per-cluster clouds
//!   ("Human" vs "Object") with capture metadata,
//! * [`generate_counting_dataset`] — full sweeps with ground-truth crowd
//!   counts,
//! * [`ObjectPool`] — pooled object points for up-sampling,
//! * [`Split`] / [`fraction`] — the 80:20 split and the
//!   limited-training-data subsampling of Fig. 8b,
//! * [`codec`] — a compact binary format so generated datasets can be
//!   cached on disk.
//!
//! Generation is deterministic given a seed and parallelised across worker
//! threads with per-chunk RNG streams, so the same configuration always
//! yields the same dataset regardless of thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
pub mod codec;
mod gen;
mod metrics;
mod pool;
mod sample;
mod split;

pub use classifier::CloudClassifier;
pub use gen::{
    generate_counting_dataset, generate_detection_dataset, generate_object_pool,
    CountingDatasetConfig, DetectionDatasetConfig,
};
pub use metrics::BinaryMetrics;
pub use pool::ObjectPool;
pub use sample::{ClassLabel, CountingSample, DetectionSample, SampleMeta};
pub use split::{fraction, split, Split};
