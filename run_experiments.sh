#!/bin/bash
# Regenerates every table/figure; outputs under results/.
set -u
cd "$(dirname "$0")"
mkdir -p results
run() {
  local name=$1; shift
  echo "=== $name $(date +%H:%M:%S)"
  cargo run --release -q -p bench --bin "$name" -- "$@" > "results/$name.txt" 2>&1
  echo "--- done $name $(date +%H:%M:%S)"
}
run table1_detection --epochs 45
run table3_sampling --epochs 30
run table4_clustering --epochs 45
run table5_counting --epochs 45
run fig9_projection --epochs 18
run fig8_training --samples 800 --epochs 20
run table6_scalability --epochs 45 --counting 200
echo ALL_EXPERIMENTS_DONE
