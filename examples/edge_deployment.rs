//! Edge deployment: quantize a trained HAWC to int8, compare accuracy,
//! price both builds on the Jetson Nano and Coral Dev Board latency
//! models, and check the summer thermal envelope — the §VI deployment
//! story end to end.
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use edge::thermal::{simulate, summarize, ThermalConfig};
use hawc_cc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    println!("training HAWC…");
    let data = generate_detection_dataset(&DetectionDatasetConfig {
        samples: 800,
        seed: 5,
        ..DetectionDatasetConfig::default()
    });
    let pool = generate_object_pool(5, 64, &WalkwayConfig::default(), &SensorConfig::default());
    let parts = split(&mut rng, data, 0.8);
    let cfg = HawcConfig {
        target_points: 0,
        epochs: 25,
        ..HawcConfig::default()
    };
    let mut model = HawcClassifier::train(&parts.train, pool, &cfg, &mut rng);

    // Post-training quantization, calibrated on 100 training clusters
    // exactly as §VI describes.
    let mut quantized = model.quantize(&parts.train, 100).expect("HAWC quantizes");
    let fp = model.evaluate(&parts.test);
    let q = quantized.evaluate(&parts.test);
    println!("fp32: {fp}");
    println!("int8: {q}");
    println!(
        "quantization accuracy change: {:+.2} pp (paper: −0.44 pp)\n",
        (q.accuracy - fp.accuracy) * 100.0
    );

    // Price both builds on the edge devices.
    let profile = model.profile();
    for device in [DeviceModel::jetson_nano(), DeviceModel::coral_dev_board()] {
        let fp_ms = device.latency_ms(&profile, Precision::Fp32);
        let q_ms = device.latency_ms(&profile, Precision::Int8);
        println!(
            "{:<16} fp32 {:>6.2} ms | int8 {:>6.2} ms | speedup {:.2}x",
            device.name(),
            fp_ms,
            q_ms,
            fp_ms / q_ms
        );
    }

    // Will the pole compartment cook the board in June?
    let readings = simulate(&ThermalConfig::default(), &mut rng);
    let s = summarize(&readings);
    println!(
        "\nsummer thermal check: pole max {:.1} °C (Coral rated to 50 °C; {:.1}% of readings above) — \
         the paper's deployment also exceeded the rating and kept running",
        s.pole_max_c,
        s.above_rated_fraction * 100.0
    );
}
