//! Quickstart: train HAWC on a small synthetic campus dataset and count
//! the pedestrians in a fresh capture.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hawc_cc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use world::{CampusObject, ObjectKind};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Generate a labelled detection dataset and an object pool from
    //    the simulated pole-mounted LiDAR.
    println!("generating datasets…");
    let data = generate_detection_dataset(&DetectionDatasetConfig {
        samples: 800,
        seed: 7,
        ..DetectionDatasetConfig::default()
    });
    let pool = generate_object_pool(7, 64, &WalkwayConfig::default(), &SensorConfig::default());
    let parts = split(&mut rng, data, 0.8);

    // 2. Train the Height-Aware Human Classifier.
    println!("training HAWC on {} clusters…", parts.train.len());
    let cfg = HawcConfig {
        target_points: 0,
        epochs: 25,
        ..HawcConfig::default()
    };
    let mut model = HawcClassifier::train(&parts.train, pool, &cfg, &mut rng);
    let metrics = model.evaluate(&parts.test);
    println!("single-person detection: {metrics}");

    // 3. Build a live scene — three pedestrians and some clutter — and
    //    run the full HAWC-CC pipeline on one LiDAR sweep.
    let walkway = WalkwayConfig::default();
    let mut scene = Scene::new(walkway);
    for (x, y) in [(14.0, 0.5), (19.5, -1.2), (27.0, 1.8)] {
        scene.add_human(Human::new(world::HumanParams::sample(&mut rng), x, y, 0.3));
    }
    scene.add_object(CampusObject::build(
        &mut rng,
        ObjectKind::TrashCan,
        16.0,
        -2.0,
    ));
    scene.add_object(CampusObject::build(&mut rng, ObjectKind::Bench, 23.0, 2.0));

    let sensor = Lidar::new(SensorConfig::default());
    let mut sweep = sensor.scan(&scene, &mut rng);
    roi_filter(&mut sweep, &walkway);
    ground_segment(&mut sweep);
    let capture = sweep.into_cloud();
    println!(
        "capture: {} points after ROI crop and ground segmentation",
        capture.len()
    );
    println!("side view (x →, height ↑): people are the tall columns\n");
    println!("{}", lidar::viz::render_side_view(&capture, 72, 10));

    let mut counter = CrowdCounter::new(model, CounterConfig::default());
    let result = counter.count(&capture);
    println!(
        "counted {} pedestrians (3 in the scene) from {} clusters in {:.2} ms",
        result.count,
        result.clusters_classified,
        result.total_ms()
    );
}
