//! A whole campus corridor at once: N simulated blue light poles,
//! each running its own supervised counting loop behind a
//! [`fleet::PoleAgent`], streaming reports over a lossy in-process
//! link into one [`fleet::Aggregator`] that prints live fused
//! occupancy.
//!
//! ```text
//! cargo run --release --example campus                   # 8 poles, live table
//! cargo run --release --example campus -- --poles 12     # bigger corridor
//! cargo run --release --example campus -- --loss 0.2     # nastier links
//! cargo run --release --example campus -- --json         # JSONL snapshots
//! cargo run --release --example campus -- --ops          # health scoreboard
//! cargo run --release --example campus -- --capture campus.hwcr   # record the wire
//! cargo run --release --example campus -- --checkpoint campus.ckpt # warm restart
//! cargo run --release --example campus -- --serve 127.0.0.1:8080  # HTTP snapshots
//! ```
//!
//! `--serve ADDR` attaches the snapshot serving tier: a single-thread
//! HTTP/1.1 server on ADDR answering `GET /snapshot` (ETag = publish
//! seq, so pollers revalidate for a near-free 304), `GET /zone/x,y`
//! and `GET /pole/id` slices, `GET /delta?since=N` long-polls and
//! `GET /history?res=1s|10s|1m` ring-buffer rollups, straight off the
//! aggregator's lock-free snapshot cell.
//!
//! `--capture PATH` records every inbound frame with its arrival
//! metadata; replay it later through `fleet::replay` to reproduce the
//! run's snapshots bit-exactly. `--checkpoint PATH` restores fused
//! state from PATH when it exists, checkpoints in the background every
//! 2 s, and writes a final checkpoint on exit — so a second invocation
//! resumes with poles still known instead of a cold campus.
//!
//! Poles stand every 15 m down a shared corridor with a 23 m region
//! of interest each, so neighbouring poles watch overlapping stretches
//! of walkway — pedestrians near the seams are seen twice and the
//! aggregator's centroid dedup has real work to do. Classification
//! uses the height rule (tall clusters are humans) so the example
//! starts instantly; swap in a trained `HawcClassifier` for the full
//! pipeline.

use std::time::Duration;

use cluster::AdaptiveConfig;
use counting::{CounterConfig, CrowdCounter, SupervisedCounter, SupervisorConfig};
use dataset::{ClassLabel, CloudClassifier};
use fleet::{AgentConfig, Aggregator, AggregatorConfig, LoopbackConfig, LoopbackHub, PoleAgent};
use geom::Point3;
use hawc_cc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use world::{corridor_layout, HumanParams, PolePose, PoleRegistry};

const SEED: u64 = 404;
const SPACING_M: f64 = 15.0;

struct Args {
    poles: usize,
    steps: usize,
    loss: f64,
    json: bool,
    ops: bool,
    capture: Option<std::path::PathBuf>,
    checkpoint: Option<std::path::PathBuf>,
    serve: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        poles: 8,
        steps: 30,
        loss: 0.05,
        json: false,
        ops: false,
        capture: None,
        checkpoint: None,
        serve: None,
    };
    fn num(args: &mut impl Iterator<Item = String>, name: &str) -> f64 {
        args.next()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| {
                eprintln!("{name} needs a number");
                std::process::exit(2);
            })
    }
    fn path(args: &mut impl Iterator<Item = String>, name: &str) -> std::path::PathBuf {
        args.next()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                eprintln!("{name} needs a path");
                std::process::exit(2);
            })
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--poles" => out.poles = num(&mut args, "--poles") as usize,
            "--steps" => out.steps = num(&mut args, "--steps") as usize,
            "--loss" => out.loss = num(&mut args, "--loss"),
            "--json" => out.json = true,
            "--ops" => out.ops = true,
            "--capture" => out.capture = Some(path(&mut args, "--capture")),
            "--checkpoint" => out.checkpoint = Some(path(&mut args, "--checkpoint")),
            "--serve" => {
                out.serve = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--serve needs an address (e.g. 127.0.0.1:8080)");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!(
                    "unknown flag {other} (use --poles <n>, --steps <n>, --loss <p>, --json, --ops, --capture <path>, --checkpoint <path>, --serve <addr>)"
                );
                std::process::exit(2);
            }
        }
    }
    if out.poles == 0 {
        eprintln!("--poles must be at least 1");
        std::process::exit(2);
    }
    out
}

/// Tall clusters are humans — the paper's height prior as a rule, so
/// the example needs no training pass.
struct HeightRule;

impl CloudClassifier for HeightRule {
    fn classify(&mut self, clouds: &[Vec<Point3>]) -> Vec<ClassLabel> {
        clouds
            .iter()
            .map(|c| {
                let hi = c.iter().map(|p| p.z).fold(f64::NEG_INFINITY, f64::max);
                if hi > -1.7 {
                    ClassLabel::Human
                } else {
                    ClassLabel::Object
                }
            })
            .collect()
    }

    fn model_name(&self) -> &str {
        "HeightRule"
    }
}

/// One pedestrian walking the corridor in campus coordinates.
struct Walker {
    params: HumanParams,
    x: f64,
    y: f64,
    speed: f64,
    wiggle: f64,
}

impl Walker {
    fn advance(&mut self, corridor_len: f64, step: usize) {
        self.x += self.speed;
        if self.x > corridor_len {
            self.x -= corridor_len;
        }
        self.y = self.wiggle * (0.37 * (step as f64 + self.x)).sin();
    }
}

fn main() {
    let args = parse_args();
    obs::enable(true);
    let mut rng = StdRng::seed_from_u64(SEED);

    let walkway = WalkwayConfig::default();
    let poses: Vec<PolePose> = corridor_layout(args.poles, SPACING_M);
    let registry = PoleRegistry::from_poses(poses.iter().copied());
    let corridor_len = (args.poles - 1) as f64 * SPACING_M + walkway.x_max;

    // The campus ground truth: ~1.5 walkers per pole, spread along
    // the corridor.
    let n_walkers = (args.poles * 3).div_ceil(2);
    let mut walkers: Vec<Walker> = (0..n_walkers)
        .map(|_| Walker {
            params: HumanParams::sample(&mut rng),
            x: rng.gen::<f64>() * corridor_len,
            y: (rng.gen::<f64>() - 0.5) * 3.0,
            speed: 0.8 + rng.gen::<f64>() * 0.8,
            wiggle: 0.5 + rng.gen::<f64>(),
        })
        .collect();

    // The campus side: one aggregator, one reader thread per pole.
    let hub = LoopbackHub::new();
    let mut aggregator = Aggregator::new(registry, walkway, AggregatorConfig::default());
    if let Some(path) = &args.capture {
        match fleet::CaptureWriter::create(path) {
            Ok(writer) => {
                aggregator = aggregator.with_capture(writer);
                println!("recording the wire to {}", path.display());
            }
            Err(e) => {
                eprintln!("--capture {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let mut checkpointer = None;
    if let Some(path) = &args.checkpoint {
        if path.exists() {
            match aggregator.restore_from_file(path) {
                Ok(()) => {
                    let snap = aggregator.snapshot();
                    println!(
                        "warm restart from {}: {} poles known, fused occupancy {}",
                        path.display(),
                        snap.poles.len(),
                        snap.occupancy
                    );
                }
                Err(e) => eprintln!(
                    "checkpoint {} unusable ({e}); starting cold",
                    path.display()
                ),
            }
        }
        checkpointer = Some(aggregator.spawn_checkpointer(path.clone(), Duration::from_secs(2)));
    }

    // The reader side: every fused publish lands in the aggregator's
    // snapshot cell; the serving tier fans it out over HTTP without
    // ever touching the fusion path.
    let mut http = None;
    if let Some(addr) = &args.serve {
        let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
            eprintln!("--serve {addr}: {e}");
            std::process::exit(2);
        });
        let server = serve::HttpServer::spawn(
            listener,
            aggregator.snapshot_cell(),
            serve::ServeConfig::default(),
        )
        .unwrap_or_else(|e| {
            eprintln!("--serve {addr}: {e}");
            std::process::exit(2);
        });
        println!(
            "serving http://{} — GET /snapshot | /zone/x,y | /pole/id | /delta?since=N | /history?res=1s|10s|1m",
            server.local_addr()
        );
        http = Some(server);
    }

    // The pole side: an agent per pose, dialling the hub over a link
    // that drops `loss` of frames and reorders a few percent more.
    let mut agents: Vec<PoleAgent<HeightRule>> = poses
        .iter()
        .map(|pose| {
            // Sparse far-range humans fragment under the paper's tiny
            // degenerate-case fallback ε; clamp the adaptive ε into
            // the usable band around Table IV's best fixed 0.5.
            let counter = SupervisedCounter::new(
                CrowdCounter::new(
                    HeightRule,
                    CounterConfig {
                        min_cluster_points: 8,
                        ..CounterConfig::default()
                    },
                ),
                SupervisorConfig {
                    deadline_ms: 500.0,
                    adaptive: AdaptiveConfig {
                        fallback_eps: 0.5,
                        min_eps: 0.35,
                        ..AdaptiveConfig::default()
                    },
                    ..SupervisorConfig::default()
                },
            );
            let link =
                LoopbackConfig::lossy(args.loss, args.loss / 2.0, SEED ^ u64::from(pose.pole_id));
            let mut cfg = AgentConfig::for_pole(pose.pole_id);
            // One telemetry window every 10 frames; heartbeats carry
            // extra windows for free when the uplink goes quiet.
            cfg.telemetry_every_frames = 10;
            PoleAgent::new(counter, Box::new(hub.connector(link)), cfg)
        })
        .collect();

    let sensor = Lidar::new(SensorConfig::default());
    println!(
        "campus: {} poles every {SPACING_M} m, {} walkers, {:.0}% frame loss\n",
        args.poles,
        n_walkers,
        args.loss * 100.0
    );
    println!("step | truth | fused | unmapped | live/stale/dead | zones");

    // The campus ingests through the event-driven reactor: one poll
    // loop owns every accepted link, a small worker pool fuses.
    let reactor = aggregator.spawn_reactor();
    for step in 0..args.steps {
        for w in &mut walkers {
            w.advance(corridor_len, step);
        }
        // Ground truth: walkers standing in at least one pole's ROI.
        let visible = walkers
            .iter()
            .filter(|w| {
                poses
                    .iter()
                    .any(|p| p.covers(Point3::new(w.x, w.y, world::GROUND_Z), &walkway))
            })
            .count();

        // Each pole captures its local view of the shared campus.
        for (pose, agent) in poses.iter().zip(agents.iter_mut()) {
            let mut scene = Scene::new(walkway);
            for w in &walkers {
                let local = pose.to_local(Point3::new(w.x, w.y, world::GROUND_Z));
                if local.x >= walkway.x_min - 2.0
                    && local.x <= walkway.x_max + 2.0
                    && local.y.abs() <= walkway.half_width() + 1.0
                {
                    scene.add_human(world::Human::new(w.params, local.x, local.y, 0.0));
                }
            }
            let mut sweep = sensor.scan(&scene, &mut rng);
            roi_filter(&mut sweep, &walkway);
            ground_segment(&mut sweep);
            agent.step(&sweep.into_cloud());
        }
        // Adopt any connections the agents just dialled.
        while let Ok(server) = hub.accept(Duration::from_millis(1)) {
            aggregator.add_connection(Box::new(server));
        }
        // Let the reactor drain this round's frames.
        std::thread::sleep(Duration::from_millis(15));

        let snap = aggregator.snapshot();
        let zones: Vec<String> = snap
            .zones
            .iter()
            .map(|z| format!("[{},{}]={}", z.zone_x, z.zone_y, z.count))
            .collect();
        println!(
            "{:>4} | {:>5} | {:>5} | {:>8} | {:>4}/{}/{} | {}",
            step,
            visible,
            snap.occupancy,
            snap.unmapped,
            snap.live,
            snap.stale,
            snap.dead,
            zones.join(" ")
        );
        if args.json {
            println!("{}", snap.to_json());
        }
    }

    if args.ops {
        // The ops view: per-pole telemetry rollups, end-to-end ingest
        // latency percentiles, the fleet event journal, and — when the
        // serving tier is attached — its request counters and 304 ratio.
        let mut health = aggregator.health();
        if let Some(server) = &http {
            health = health.with_serve(server.telemetry());
        }
        println!("\n{}", health.render_table());
    }

    // Orderly shutdown: every pole says Bye. Byes ride the same lossy
    // link as everything else, so a dropped one leaves its pole Live
    // until the 5 s silence timeout ages it out.
    for agent in &mut agents {
        agent.shutdown();
    }
    std::thread::sleep(Duration::from_millis(30));
    let snap = aggregator.snapshot();
    println!(
        "\nafter shutdown: {}/{} poles dead (lost Byes age out via the silence timeout), fused occupancy {}",
        snap.dead, args.poles, snap.occupancy
    );
    aggregator.stop();
    if let Some(t) = checkpointer {
        // The checkpointer writes one final checkpoint on shutdown.
        let _ = t.join();
    }
    // The reactor drains every adopted connection before retiring.
    reactor.join();
    if let Some(mut server) = http {
        server.stop();
    }
    if let Some(path) = &args.checkpoint {
        println!("checkpoint saved to {}", path.display());
    }
    if let Some(path) = &args.capture {
        println!("wire capture saved to {}", path.display());
    }

    let sent: u64 = agents.iter().map(|a| a.stats().sent).sum();
    let reports: u64 = agents.iter().map(|a| a.stats().reports).sum();
    let stats = aggregator.stats();
    println!(
        "uplink: {reports} reports produced, {sent} frames sent, {} fused, {} reorder-discards",
        stats.reports, stats.stale_discards
    );
    println!("\n-- final telemetry --");
    print!("{}", obs::export::render_table(&obs::snapshot()));
}
