//! A day on the walkway: streams captures of a changing campus scene
//! through HAWC-CC and prints a pedestrian-count time series — the
//! "peak times and popular routes" application from the paper's
//! introduction.
//!
//! ```text
//! cargo run --release --example live_walkway                  # table + snapshots
//! cargo run --release --example live_walkway -- --json        # + JSONL dump
//! cargo run --release --example live_walkway -- --faults fog  # faulted sensor
//! cargo run --release --example live_walkway -- --threads 4   # classify fan-out
//! ```
//!
//! Telemetry is on for the whole run: every 10 slots the current
//! metrics table is printed, and `--json` additionally dumps the
//! metrics snapshot and per-frame journal as JSON lines at the end.
//!
//! With `--faults <preset>` the sensor runs through the
//! [`lidar::FaultyLidar`] injection layer (presets: fog,
//! dead-channels, salt, blockage, drops, jitter) and the pipeline runs
//! inside the [`counting::SupervisedCounter`] fault-contained loop, so
//! the time series shows held counts and health transitions instead of
//! outages.

use counting::{CountSmoother, PedestrianTracker, TrackerConfig};
use hawc_cc::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use world::Human;

const SEED: u64 = 99;

fn parse_args() -> (bool, Option<FaultScript>, usize) {
    let mut json = false;
    let mut script = None;
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--threads" => {
                let n = args.next().and_then(|v| v.parse::<usize>().ok());
                threads = n.unwrap_or_else(|| {
                    eprintln!("--threads needs a number (0 = one worker per core)");
                    std::process::exit(2);
                });
            }
            "--faults" => {
                let name = args.next().unwrap_or_else(|| {
                    eprintln!(
                        "--faults needs a preset: {}",
                        lidar::FaultScript::preset_names().join(", ")
                    );
                    std::process::exit(2);
                });
                script = Some(lidar::FaultScript::preset(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown fault preset '{name}' (have: {})",
                        lidar::FaultScript::preset_names().join(", ")
                    );
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown flag {other} (use --json, --faults <preset>, --threads <n>)");
                std::process::exit(2);
            }
        }
    }
    (json, script, threads)
}

/// Expected pedestrians at a given campus hour (classes, lunch, night).
fn expected_traffic(hour: f64) -> f64 {
    let class_rush = (-(hour - 9.0f64).powi(2) / 3.0).exp() * 4.0
        + (-(hour - 12.5f64).powi(2) / 2.0).exp() * 5.0
        + (-(hour - 17.0f64).powi(2) / 4.0).exp() * 3.5;
    0.2 + class_rush
}

fn main() {
    let (json, script, threads) = parse_args();
    obs::enable(true);

    let mut rng = StdRng::seed_from_u64(SEED);
    println!("training HAWC…");
    let data = generate_detection_dataset(&DetectionDatasetConfig {
        samples: 800,
        seed: SEED,
        ..DetectionDatasetConfig::default()
    });
    let pool = generate_object_pool(
        SEED,
        64,
        &WalkwayConfig::default(),
        &SensorConfig::default(),
    );
    let parts = split(&mut rng, data, 0.8);
    let cfg = HawcConfig {
        target_points: 0,
        epochs: 25,
        ..HawcConfig::default()
    };
    let model = HawcClassifier::train(&parts.train, pool, &cfg, &mut rng);

    let walkway = WalkwayConfig::default();
    // With --faults: sensor wrapped in the injection layer, pipeline
    // wrapped in the supervised loop. Without: the bare pipeline.
    enum Engine {
        Plain(Box<CrowdCounter<HawcClassifier>>),
        Supervised(Box<SupervisedCounter<HawcClassifier>>, FaultyLidar),
    }
    let counter = CrowdCounter::new(
        model,
        CounterConfig {
            classify_threads: threads,
            ..CounterConfig::default()
        },
    );
    let mut engine = match script {
        Some(script) => {
            println!("fault script active: {}", script.classes_at(0).join(", "));
            // The per-frame budget is wall-clock of this simulation's
            // f64 NN, far slower than the Coral's int8 engine — budget
            // a few frames so the ladder reacts to faults, not to the
            // host machine.
            let cfg = SupervisorConfig {
                deadline_ms: 500.0,
                ..SupervisorConfig::default()
            };
            Engine::Supervised(
                Box::new(SupervisedCounter::new(counter, cfg)),
                FaultyLidar::new(Lidar::new(SensorConfig::default()), script),
            )
        }
        None => Engine::Plain(Box::new(counter)),
    };
    let sensor = Lidar::new(SensorConfig::default());
    let mut smoother = CountSmoother::new(3);
    let mut tracker = PedestrianTracker::new(TrackerConfig::default());
    println!("\nhour | actual | counted | smoothed | bar");
    let mut total_err = 0i64;
    let mut samples = 0u32;
    for slot in 0..28 {
        let hour = 7.0 + slot as f64 * 0.5;
        let lambda = expected_traffic(hour);
        // Poisson-ish arrival count.
        let mut n = 0usize;
        let mut acc = (-lambda).exp();
        let u: f64 = rng.gen();
        let mut cum = acc;
        while cum < u && n < 12 {
            n += 1;
            acc *= lambda / n as f64;
            cum += acc;
        }
        let mut scene = Scene::new(walkway);
        for _ in 0..n {
            scene.add_human(Human::sample(&mut rng, &walkway));
        }
        // Open the frame here so the journal entry carries the harness
        // seed and source; the pipeline annotates it.
        obs::frame_start("live_walkway");
        obs::frame_seed(SEED);
        let (count, capture, status) = match &mut engine {
            Engine::Plain(counter) => {
                let mut sweep = sensor.scan(&scene, &mut rng);
                roi_filter(&mut sweep, &walkway);
                ground_segment(&mut sweep);
                let capture = sweep.into_cloud();
                let result = counter.count(&capture);
                obs::frame_finish(result.count);
                (result.count, capture, String::new())
            }
            Engine::Supervised(supervised, faulty) => {
                let frame = faulty.scan(&scene, &mut rng);
                let (capture, out) = if frame.dropped {
                    (PointCloud::empty(), supervised.step_dropped())
                } else {
                    let mut sweep = frame.sweep;
                    roi_filter(&mut sweep, &walkway);
                    ground_segment(&mut sweep);
                    let capture = sweep.into_cloud();
                    let out = supervised.step(&capture);
                    (capture, out)
                };
                let mut status = format!(" [{}", out.health.as_str());
                if out.held {
                    status.push_str(", held");
                }
                status.push(']');
                (out.count, capture, status)
            }
        };
        let smoothed = smoother.push(count);
        // Track identities from the counted clusters' rough positions:
        // approximate each human cluster by the capture centroid jittered
        // per count (full integration would pass cluster centroids; the
        // tracker API accepts any per-frame positions).
        let detections: Vec<geom::Point3> = (0..count)
            .map(|i| {
                capture.centroid().unwrap_or(geom::Point3::ZERO)
                    + geom::Vec3::new(i as f64 * 0.5, 0.0, 0.0)
            })
            .collect();
        tracker.step(&detections);
        total_err += (count as i64 - n as i64).abs();
        samples += 1;
        println!(
            "{:>4.1} | {:>6} | {:>7} | {:>8} | {}{}",
            hour,
            n,
            count,
            smoothed,
            "#".repeat(count),
            status
        );
        if slot % 10 == 9 {
            println!("\n-- telemetry after {} slots --", slot + 1);
            print!("{}", obs::export::render_table(&obs::snapshot()));
            println!();
        }
    }
    println!(
        "\nmean absolute error over the day: {:.2}",
        total_err as f64 / samples as f64
    );
    println!("distinct pedestrian tracks observed: {}", tracker.frames());

    // One day of compartment temperatures: sets the edge.pole_c gauge
    // and the over-envelope counter for the final snapshot.
    let thermal = edge::thermal::simulate(
        &edge::thermal::ThermalConfig {
            days: 1,
            ..edge::thermal::ThermalConfig::default()
        },
        &mut rng,
    );
    let summary = edge::thermal::summarize(&thermal);
    println!(
        "pole compartment: max {:.1} °C, {:.1}% of readings over the {} °C envelope",
        summary.pole_max_c,
        summary.above_rated_fraction * 100.0,
        edge::thermal::RATED_LIMIT_C,
    );

    println!("\n-- final telemetry --");
    print!("{}", obs::export::render_table(&obs::snapshot()));
    if json {
        println!("\n-- telemetry jsonl --");
        print!("{}", obs::export::snapshot_jsonl(&obs::snapshot()));
        print!(
            "{}",
            obs::export::journal_jsonl(obs::journal_snapshot().iter())
        );
    }
}
