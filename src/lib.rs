//! HAWC-CC — smart blue light pole LiDAR crowd counting, in Rust.
//!
//! This umbrella crate re-exports the whole workspace: a full
//! reproduction of *"Smart Blue Light Pole-based Real-Time Crowd Counting
//! for Smart Campuses"* (ICDCS 2025), from the ray-casting LiDAR
//! simulator up to the deployed counting pipeline and its edge latency
//! models. See `README.md` for a tour and `DESIGN.md` for the
//! paper-to-module map.
//!
//! The typical flow:
//!
//! 1. generate datasets with [`dataset`],
//! 2. train a [`hawc::HawcClassifier`] (or a [`baselines`] model),
//! 3. wrap it in a [`counting::CrowdCounter`] and feed it captures,
//! 4. quantize with [`nn::quant`] and price deployment with
//!    [`edge::DeviceModel`].
//!
//! # Examples
//!
//! ```no_run
//! use hawc_cc::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let data = generate_detection_dataset(&DetectionDatasetConfig::default());
//! let pool = generate_object_pool(
//!     1, 64, &WalkwayConfig::default(), &SensorConfig::default());
//! let parts = split(&mut rng, data, 0.8);
//! let model = HawcClassifier::train(&parts.train, pool, &HawcConfig::default(), &mut rng);
//! let mut counter = CrowdCounter::new(model, CounterConfig::default());
//! ```

#![forbid(unsafe_code)]

pub use baselines;
pub use cluster;
pub use counting;
pub use dataset;
pub use edge;
pub use features;
pub use fleet;
pub use geom;
pub use hawc;
pub use lidar;
pub use nn;
pub use obs;
pub use ocsvm;
pub use projection;
pub use world;

/// The most common imports in one place.
pub mod prelude {
    pub use baselines::{
        AutoEncoderClassifier, AutoEncoderConfig, OcSvmClassifier, OcSvmClassifierConfig,
        PointNetClassifier, PointNetConfig,
    };
    pub use cluster::{adaptive_dbscan, AdaptiveConfig};
    pub use counting::{
        evaluate_counter, CounterConfig, CrowdCounter, HealthState, SupervisedCounter,
        SupervisorConfig,
    };
    pub use dataset::{
        generate_counting_dataset, generate_detection_dataset, generate_object_pool, split,
        ClassLabel, CloudClassifier, CountingDatasetConfig, DetectionDatasetConfig, ObjectPool,
    };
    pub use edge::{DeviceModel, Precision, ThrottleConfig, ThrottleMonitor, ThrottleState};
    pub use fleet::{
        AgentConfig, Aggregator, AggregatorConfig, CampusSnapshot, FusionConfig, PoleAgent,
    };
    pub use hawc::{HawcClassifier, HawcConfig};
    pub use lidar::{
        ground_segment, roi_filter, FaultKind, FaultSchedule, FaultScript, FaultyLidar, Lidar,
        PointCloud, SensorConfig,
    };
    pub use world::{corridor_layout, Human, PoleRegistry, Scene, WalkwayConfig};
}
